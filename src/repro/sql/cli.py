"""``repro-sql``: a small console front door to the SQL session.

Examples::

    # optimizer-only session (analytic statistics, no data): EXPLAIN works
    repro-sql -c "EXPLAIN SELECT n_name FROM nation, region \
                  WHERE n_regionkey = r_regionkey"

    # generate synthetic data so SELECT / EXPLAIN ANALYZE execute for real
    repro-sql --data-scale 0.0005 -c "SELECT c_mktsegment, COUNT(*) \
                  FROM customer GROUP BY c_mktsegment ORDER BY c_mktsegment"

    # interactive: statements end with ';'
    repro-sql --data-scale 0.0005
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.common.errors import ReproError, SqlError
from repro.engine import DEFAULT_BATCH_SIZE, DEFAULT_ENGINE, ENGINE_NAMES
from repro.sql.errors import describe
from repro.sql.session import Session, SqlResult
from repro.workloads.tpch import catalog_from_data, generate_tpch_data, tpch_catalog

PROMPT = "repro-sql> "
CONTINUATION = "      ...> "


def build_session(
    scale: float,
    data_scale: Optional[float],
    seed: int,
    engine: str = DEFAULT_ENGINE,
    batch_size: Optional[int] = None,
) -> Session:
    """An analytic-catalog session, or a data-backed one if data_scale given."""
    if data_scale is None:
        return Session(tpch_catalog(scale_factor=scale), engine=engine, batch_size=batch_size)
    data = generate_tpch_data(scale_factor=data_scale, seed=seed)
    return Session(catalog_from_data(data), data=data, engine=engine, batch_size=batch_size)


def run_statement(session: Session, sql: str, out=None) -> SqlResult:
    out = out if out is not None else sys.stdout
    result = session.execute(sql)
    if result.plan_text is not None:
        print(result.plan_text, file=out)
    else:
        print(str(result), file=out)
        print(f"({result.row_count} row{'s' if result.row_count != 1 else ''})", file=out)
    return result


def repl(session: Session) -> None:  # pragma: no cover - interactive loop
    print("repro-sql — TPC-H-subset SQL over the declarative optimizer")
    print("statements end with ';'; EXPLAIN / EXPLAIN ANALYZE supported; ctrl-d quits")
    buffer: list[str] = []
    while True:
        try:
            line = input(CONTINUATION if buffer else PROMPT)
        except EOFError:
            print()
            return
        except KeyboardInterrupt:
            # psql-style: drop the half-typed statement, show a fresh prompt.
            print()
            buffer = []
            continue
        buffer.append(line)
        if ";" not in line:
            continue
        sql = "\n".join(buffer).strip()
        buffer = []
        if not sql.strip(";").strip():
            continue
        try:
            run_statement(session, sql)
        except SqlError as error:
            print(describe(error), file=sys.stderr)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-sql", description="SQL frontend over the repro optimizer stack"
    )
    parser.add_argument("-c", "--command", help="execute one statement and exit", default=None)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.01,
        help="TPC-H scale factor of the analytic catalog (default 0.01)",
    )
    parser.add_argument(
        "--data-scale",
        type=float,
        default=None,
        help="also generate synthetic data at this scale so SELECT and "
        "EXPLAIN ANALYZE can execute (e.g. 0.0005)",
    )
    parser.add_argument("--seed", type=int, default=7, help="data generator seed")
    parser.add_argument(
        "--engine",
        choices=list(ENGINE_NAMES),
        default=DEFAULT_ENGINE,
        help="execution engine for SELECT / EXPLAIN ANALYZE (default: %(default)s)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="rows per batch for the vectorized engine "
        f"(default {DEFAULT_BATCH_SIZE}; ignored by --engine row)",
    )
    args = parser.parse_args(argv)

    session = build_session(
        args.scale, args.data_scale, args.seed, engine=args.engine, batch_size=args.batch_size
    )
    if args.command is not None:
        try:
            run_statement(session, args.command)
        except SqlError as error:
            print(describe(error), file=sys.stderr)
            return 1
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        return 0
    repl(session)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
