"""SQL frontend: query text → tokens → AST → bound IR → plans → rows.

This package holds the language layers under the DB-API front door
(:func:`repro.connect`).  The pipeline stages are usable independently::

    import repro

    conn = repro.connect()
    conn.execute("CREATE TABLE t (a INTEGER, b FLOAT)")
    conn.execute("INSERT INTO t VALUES (1, 0.5), (2, 1.5)")
    print(conn.execute("SELECT a FROM t WHERE b > ?", (1.0,)).fetchall())

Stages:

* :mod:`repro.sql.tokens` — hand-written lexer with source positions
  (including ``?`` / ``$n`` parameter placeholders),
* :mod:`repro.sql.parser` — recursive-descent parser for the TPC-H-class
  subset (SELECT-FROM-WHERE, JOIN..ON, GROUP BY, aggregates with DISTINCT,
  ORDER BY, LIMIT, ``/*+ selectivity=x */`` hints) plus DDL/DML
  (CREATE TABLE, INSERT, COPY, ANALYZE), ``;``-separated scripts and
  statement normalization for the plan cache,
* :mod:`repro.sql.binder` — semantic analysis against the catalog schema,
  lowering SELECTs to :class:`~repro.relational.query.Query` and validating
  DDL/DML (types, arities) into bound statement forms,
* :mod:`repro.sql.render` — ``EXPLAIN [ANALYZE]`` plan rendering,
* :mod:`repro.sql.session` — the deprecated :class:`Session` shim over
  :class:`repro.api.Database`,
* :mod:`repro.sql.cli` — the ``repro-sql`` console entry point.
"""

from repro.sql.binder import (
    Binder,
    BoundAnalyze,
    BoundCopy,
    BoundCreateTable,
    BoundInsert,
    bind,
    query_parameter_count,
)
from repro.sql.errors import SqlBindingError, SqlError, SqlSyntaxError
from repro.sql.parser import (
    Parser,
    normalize_statement,
    parse,
    parse_script,
    parse_select,
    split_statements,
    statement_has_parameters,
)
from repro.sql.render import render_plan
from repro.sql.session import Session, SqlResult
from repro.sql.tokens import Lexer, Token, TokenType, tokenize

__all__ = [
    "Binder",
    "bind",
    "BoundAnalyze",
    "BoundCopy",
    "BoundCreateTable",
    "BoundInsert",
    "query_parameter_count",
    "SqlError",
    "SqlSyntaxError",
    "SqlBindingError",
    "Parser",
    "parse",
    "parse_script",
    "parse_select",
    "split_statements",
    "statement_has_parameters",
    "normalize_statement",
    "Session",
    "SqlResult",
    "render_plan",
    "Lexer",
    "Token",
    "TokenType",
    "tokenize",
]
