"""SQL frontend: query text → tokens → AST → bound Query IR → plans → rows.

This package is the user-facing entry layer over the optimizer stack.  The
pipeline stages are usable independently (each is a thin module), or wired
end-to-end through :class:`Session`::

    from repro.sql import Session
    from repro.workloads.tpch import tpch_catalog

    session = Session(tpch_catalog(scale_factor=0.01))
    print(session.execute("EXPLAIN SELECT n_name FROM nation, region "
                          "WHERE n_regionkey = r_regionkey"))

Stages:

* :mod:`repro.sql.tokens` — hand-written lexer with source positions,
* :mod:`repro.sql.parser` — recursive-descent parser for the TPC-H-class
  subset (SELECT-FROM-WHERE, JOIN..ON, GROUP BY, aggregates with DISTINCT,
  ORDER BY, LIMIT, ``/*+ selectivity=x */`` hints),
* :mod:`repro.sql.binder` — semantic analysis against the catalog schema,
  lowering to :class:`~repro.relational.query.Query`,
* :mod:`repro.sql.session` — the facade adding optimization, execution and
  ``EXPLAIN [ANALYZE]`` rendering,
* :mod:`repro.sql.cli` — the ``repro-sql`` console entry point.
"""

from repro.sql.binder import Binder, bind
from repro.sql.errors import SqlBindingError, SqlError, SqlSyntaxError
from repro.sql.parser import Parser, parse, parse_select
from repro.sql.session import Session, SqlResult, render_plan
from repro.sql.tokens import Lexer, Token, TokenType, tokenize

__all__ = [
    "Binder",
    "bind",
    "SqlError",
    "SqlSyntaxError",
    "SqlBindingError",
    "Parser",
    "parse",
    "parse_select",
    "Session",
    "SqlResult",
    "render_plan",
    "Lexer",
    "Token",
    "TokenType",
    "tokenize",
]
