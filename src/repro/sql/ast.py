"""Abstract syntax tree for the SQL subset.

The AST is deliberately *unresolved*: column references may be unqualified and
table names unchecked.  The binder (:mod:`repro.sql.binder`) resolves names
against a :class:`~repro.catalog.catalog.Catalog` and lowers the tree into the
optimizer's :class:`~repro.relational.query.Query` IR.  Every node carries the
source position of its first token for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

Position = Tuple[int, int]


@dataclass(frozen=True)
class ColumnName:
    """A possibly-unqualified column reference ``[qualifier.]name``."""

    name: str
    qualifier: Optional[str] = None
    position: Position = (1, 1)

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Literal:
    """A numeric or string constant (``None`` for the NULL keyword)."""

    value: Union[int, float, str, None]
    position: Position = (1, 1)

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Parameter:
    """A prepared-statement placeholder: ``?`` (positional) or ``$n``.

    Indices are 1-based.  ``?`` placeholders are numbered left to right by
    the parser; a statement may use ``?`` or ``$n`` style but not both.
    """

    index: int
    position: Position = (1, 1)

    def __str__(self) -> str:
        return f"${self.index}"


Operand = Union[ColumnName, Literal, Parameter]


@dataclass(frozen=True)
class BinaryArith:
    """Binary arithmetic ``left (+|-|*|/) right``."""

    op: str
    left: "SqlExpr"
    right: "SqlExpr"
    position: Position = (1, 1)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class UnaryMinus:
    """Arithmetic negation ``-expr``."""

    operand: "SqlExpr"
    position: Position = (1, 1)

    def __str__(self) -> str:
        return f"-{self.operand}"


@dataclass(frozen=True)
class Comparison:
    """A binary comparison ``left <op> right`` from WHERE or ON.

    ``selectivity_hint`` comes from a trailing ``/*+ selectivity=x */`` hint
    comment and is carried through to the lowered
    :class:`~repro.relational.predicates.FilterPredicate`.
    """

    left: "SqlExpr"
    op: str
    right: "SqlExpr"
    selectivity_hint: Optional[float] = None
    position: Position = (1, 1)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class BetweenPredicate:
    """``operand [NOT] BETWEEN low AND high``."""

    operand: "SqlExpr"
    low: "SqlExpr"
    high: "SqlExpr"
    negated: bool = False
    selectivity_hint: Optional[float] = None
    position: Position = (1, 1)

    def __str__(self) -> str:
        keyword = "NOT BETWEEN" if self.negated else "BETWEEN"
        return f"{self.operand} {keyword} {self.low} AND {self.high}"


@dataclass(frozen=True)
class InPredicate:
    """``operand [NOT] IN (item, ...)``."""

    operand: "SqlExpr"
    items: Tuple["SqlExpr", ...]
    negated: bool = False
    selectivity_hint: Optional[float] = None
    position: Position = (1, 1)

    def __str__(self) -> str:
        keyword = "NOT IN" if self.negated else "IN"
        return f"{self.operand} {keyword} ({', '.join(str(item) for item in self.items)})"


@dataclass(frozen=True)
class LikePredicate:
    """``operand [NOT] LIKE pattern``."""

    operand: "SqlExpr"
    pattern: "SqlExpr"
    negated: bool = False
    selectivity_hint: Optional[float] = None
    position: Position = (1, 1)

    def __str__(self) -> str:
        keyword = "NOT LIKE" if self.negated else "LIKE"
        return f"{self.operand} {keyword} {self.pattern}"


@dataclass(frozen=True)
class IsNullPredicate:
    """``operand IS [NOT] NULL``."""

    operand: "SqlExpr"
    negated: bool = False
    selectivity_hint: Optional[float] = None
    position: Position = (1, 1)

    def __str__(self) -> str:
        keyword = "IS NOT NULL" if self.negated else "IS NULL"
        return f"{self.operand} {keyword}"


@dataclass(frozen=True)
class NotExpr:
    """Logical ``NOT expr``."""

    operand: "SqlExpr"
    position: Position = (1, 1)

    def __str__(self) -> str:
        return f"NOT ({self.operand})"


@dataclass(frozen=True)
class AndExpr:
    """``item AND item [AND ...]``."""

    items: Tuple["SqlExpr", ...]
    position: Position = (1, 1)

    def __str__(self) -> str:
        return " AND ".join(f"({item})" for item in self.items)


@dataclass(frozen=True)
class OrExpr:
    """``item OR item [OR ...]``."""

    items: Tuple["SqlExpr", ...]
    position: Position = (1, 1)

    def __str__(self) -> str:
        return " OR ".join(f"({item})" for item in self.items)


@dataclass(frozen=True)
class Hinted:
    """A ``/*+ selectivity=x */`` hint attached to a compound conjunct.

    Simple predicate nodes carry their hint inline; this wrapper exists for
    hints that follow a parenthesized compound, e.g. ``(a = 1 OR b = 2)
    /*+ selectivity=0.3 */``.
    """

    expr: "SqlExpr"
    selectivity_hint: float
    position: Position = (1, 1)

    def __str__(self) -> str:
        return str(self.expr)


SqlExpr = Union[
    ColumnName,
    Literal,
    Parameter,
    BinaryArith,
    UnaryMinus,
    Comparison,
    BetweenPredicate,
    InPredicate,
    LikePredicate,
    IsNullPredicate,
    NotExpr,
    AndExpr,
    OrExpr,
    Hinted,
]


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause item ``table [AS alias]``."""

    table: str
    alias: Optional[str] = None
    position: Position = (1, 1)

    @property
    def binding_name(self) -> str:
        return self.alias or self.table


@dataclass(frozen=True)
class AggregateCall:
    """``fn([DISTINCT] expr | *)`` in the SELECT list.

    The argument may be any scalar expression (``SUM(price * (1 - disc))``),
    not just a column; ``None`` means ``COUNT(*)``.
    """

    function: str  # count / sum / min / max / avg (lowercase)
    argument: Optional[SqlExpr]  # None for COUNT(*)
    distinct: bool = False
    position: Position = (1, 1)

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.function.upper()}({inner})"


@dataclass(frozen=True)
class ExpressionItem:
    """A computed SELECT item ``expr AS alias``."""

    expr: SqlExpr
    alias: str
    position: Position = (1, 1)

    def __str__(self) -> str:
        return f"{self.expr} AS {self.alias}"


SelectItem = Union[ColumnName, AggregateCall, ExpressionItem]


@dataclass(frozen=True)
class OrderExpr:
    """One ORDER BY entry."""

    column: ColumnName
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A full single-block SELECT."""

    select_items: Tuple[SelectItem, ...]
    select_star: bool
    tables: Tuple[TableRef, ...]
    #: top-level WHERE/ON conjuncts (each an arbitrary boolean expression)
    predicates: Tuple[SqlExpr, ...]
    group_by: Tuple[ColumnName, ...] = ()
    order_by: Tuple[OrderExpr, ...] = ()
    limit: Optional[int] = None
    position: Position = (1, 1)


@dataclass(frozen=True)
class ExplainStatement:
    """``EXPLAIN [ANALYZE] <select>``."""

    select: SelectStatement
    analyze: bool = False
    position: Position = (1, 1)


@dataclass(frozen=True)
class ColumnDef:
    """One ``name TYPE`` entry of a CREATE TABLE column list."""

    name: str
    type_name: str  # raw identifier as written; the binder maps it to DataType
    position: Position = (1, 1)


@dataclass(frozen=True)
class IndexDef:
    """An ``INDEX (column)`` clause inside CREATE TABLE."""

    column: str
    position: Position = (1, 1)


@dataclass(frozen=True)
class CreateTableStatement:
    """``CREATE TABLE t (col TYPE, ..., [PRIMARY KEY (col)], [INDEX (col)]...)``."""

    table: str
    columns: Tuple[ColumnDef, ...]
    indexes: Tuple[IndexDef, ...] = ()
    primary_key: Optional[str] = None
    position: Position = (1, 1)


@dataclass(frozen=True)
class CreateIndexStatement:
    """``CREATE [UNIQUE] INDEX name ON table (column) [USING HASH|ORDERED]``.

    ``kind`` is ``None`` when no USING clause was written (the binder
    defaults it to ``ordered``).  ``table_position`` / ``column_position``
    let the binder point its caret at the offending identifier.
    """

    name: str
    table: str
    column: str
    unique: bool = False
    kind: Optional[str] = None
    position: Position = (1, 1)
    table_position: Position = (1, 1)
    column_position: Position = (1, 1)


@dataclass(frozen=True)
class DropIndexStatement:
    """``DROP INDEX name``."""

    name: str
    position: Position = (1, 1)
    name_position: Position = (1, 1)


@dataclass(frozen=True)
class InsertStatement:
    """``INSERT INTO t [(col, ...)] VALUES (v, ...), (v, ...)``."""

    table: str
    columns: Tuple[str, ...]  # empty = table's full column order
    rows: Tuple[Tuple[Union[Literal, Parameter], ...], ...]
    position: Position = (1, 1)


@dataclass(frozen=True)
class CopyStatement:
    """``COPY t FROM '<csv>' [WITH (NULL '<tok>', DELIMITER '<ch>')]``.

    Bulk load from a header-ful CSV file.  Without an explicit NULL token,
    empty fields load as NULL (so empty strings cannot round-trip); with
    one, only fields exactly equal to the token are NULL.
    """

    table: str
    path: str
    null_token: Optional[str] = None
    delimiter: str = ","
    position: Position = (1, 1)


@dataclass(frozen=True)
class AnalyzeStatement:
    """``ANALYZE [t]`` — (re)build statistics from stored data."""

    table: Optional[str] = None
    position: Position = (1, 1)


Statement = Union[
    SelectStatement,
    ExplainStatement,
    CreateTableStatement,
    CreateIndexStatement,
    DropIndexStatement,
    InsertStatement,
    CopyStatement,
    AnalyzeStatement,
]
