"""Abstract syntax tree for the SQL subset.

The AST is deliberately *unresolved*: column references may be unqualified and
table names unchecked.  The binder (:mod:`repro.sql.binder`) resolves names
against a :class:`~repro.catalog.catalog.Catalog` and lowers the tree into the
optimizer's :class:`~repro.relational.query.Query` IR.  Every node carries the
source position of its first token for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

Position = Tuple[int, int]


@dataclass(frozen=True)
class ColumnName:
    """A possibly-unqualified column reference ``[qualifier.]name``."""

    name: str
    qualifier: Optional[str] = None
    position: Position = (1, 1)

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class Literal:
    """A numeric or string constant (``None`` for the NULL keyword)."""

    value: Union[int, float, str, None]
    position: Position = (1, 1)

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Parameter:
    """A prepared-statement placeholder: ``?`` (positional) or ``$n``.

    Indices are 1-based.  ``?`` placeholders are numbered left to right by
    the parser; a statement may use ``?`` or ``$n`` style but not both.
    """

    index: int
    position: Position = (1, 1)

    def __str__(self) -> str:
        return f"${self.index}"


Operand = Union[ColumnName, Literal, Parameter]


@dataclass(frozen=True)
class Comparison:
    """A binary comparison ``left <op> right`` from WHERE or ON.

    ``selectivity_hint`` comes from a trailing ``/*+ selectivity=x */`` hint
    comment and is carried through to the lowered
    :class:`~repro.relational.predicates.FilterPredicate`.
    """

    left: Operand
    op: str
    right: Operand
    selectivity_hint: Optional[float] = None
    position: Position = (1, 1)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause item ``table [AS alias]``."""

    table: str
    alias: Optional[str] = None
    position: Position = (1, 1)

    @property
    def binding_name(self) -> str:
        return self.alias or self.table


@dataclass(frozen=True)
class AggregateCall:
    """``fn([DISTINCT] column | *)`` in the SELECT list."""

    function: str  # count / sum / min / max / avg (lowercase)
    argument: Optional[ColumnName]  # None for COUNT(*)
    distinct: bool = False
    position: Position = (1, 1)

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.function.upper()}({inner})"


SelectItem = Union[ColumnName, AggregateCall]


@dataclass(frozen=True)
class OrderExpr:
    """One ORDER BY entry."""

    column: ColumnName
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A full single-block SELECT."""

    select_items: Tuple[SelectItem, ...]
    select_star: bool
    tables: Tuple[TableRef, ...]
    predicates: Tuple[Comparison, ...]
    group_by: Tuple[ColumnName, ...] = ()
    order_by: Tuple[OrderExpr, ...] = ()
    limit: Optional[int] = None
    position: Position = (1, 1)


@dataclass(frozen=True)
class ExplainStatement:
    """``EXPLAIN [ANALYZE] <select>``."""

    select: SelectStatement
    analyze: bool = False
    position: Position = (1, 1)


@dataclass(frozen=True)
class ColumnDef:
    """One ``name TYPE`` entry of a CREATE TABLE column list."""

    name: str
    type_name: str  # raw identifier as written; the binder maps it to DataType
    position: Position = (1, 1)


@dataclass(frozen=True)
class IndexDef:
    """An ``INDEX (column)`` clause inside CREATE TABLE."""

    column: str
    position: Position = (1, 1)


@dataclass(frozen=True)
class CreateTableStatement:
    """``CREATE TABLE t (col TYPE, ..., [PRIMARY KEY (col)], [INDEX (col)]...)``."""

    table: str
    columns: Tuple[ColumnDef, ...]
    indexes: Tuple[IndexDef, ...] = ()
    primary_key: Optional[str] = None
    position: Position = (1, 1)


@dataclass(frozen=True)
class InsertStatement:
    """``INSERT INTO t [(col, ...)] VALUES (v, ...), (v, ...)``."""

    table: str
    columns: Tuple[str, ...]  # empty = table's full column order
    rows: Tuple[Tuple[Union[Literal, Parameter], ...], ...]
    position: Position = (1, 1)


@dataclass(frozen=True)
class CopyStatement:
    """``COPY t FROM '<csv path>'`` — bulk load from a header-ful CSV file."""

    table: str
    path: str
    position: Position = (1, 1)


@dataclass(frozen=True)
class AnalyzeStatement:
    """``ANALYZE [t]`` — (re)build statistics from stored data."""

    table: Optional[str] = None
    position: Position = (1, 1)


Statement = Union[
    SelectStatement,
    ExplainStatement,
    CreateTableStatement,
    InsertStatement,
    CopyStatement,
    AnalyzeStatement,
]
