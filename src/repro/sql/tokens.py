"""Tokenizer for the SQL frontend.

A hand-written scanner producing a flat token stream with 1-based line/column
positions, so every later stage (parser, binder) can attach a precise position
to its error messages.  Beyond standard SQL lexemes it understands *hint
comments* ``/*+ selectivity=0.2 */`` which the parser attaches to the
preceding predicate — that is how the declarative workload definitions carry
the paper's pinned selectivities through query text.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

from repro.common.errors import SqlSyntaxError


class TokenType(Enum):
    IDENTIFIER = "identifier"
    KEYWORD = "keyword"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    OPERATOR = "operator"  # = != <> < <= > >=
    COMMA = ","
    DOT = "."
    LPAREN = "("
    RPAREN = ")"
    STAR = "*"  # SELECT * and multiplication
    SEMICOLON = ";"
    MINUS = "-"
    PLUS = "+"
    SLASH = "/"
    HINT = "hint"  # /*+ ... */
    PARAMETER = "parameter"  # ? or $1, $2, ...
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "select",
        "distinct",
        "from",
        "where",
        "and",
        "group",
        "order",
        "by",
        "asc",
        "desc",
        "limit",
        "as",
        "join",
        "inner",
        "on",
        "count",
        "sum",
        "min",
        "max",
        "avg",
        "explain",
        "analyze",
        "window",
        "rows",
        "range",
        # expression grammar
        "or",
        "not",
        "between",
        "in",
        "like",
        "is",
        # DDL / DML
        "create",
        "table",
        "index",
        "primary",
        "key",
        "insert",
        "into",
        "values",
        "copy",
        "null",
        "drop",
        "unique",
        "using",
    }
)

_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">")

_IDENTIFIER_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUMBER_RE = re.compile(r"\d+(\.\d+)?([eE][-+]?\d+)?")
_PARAMETER_RE = re.compile(r"\$\d+")


@dataclass(frozen=True)
class Token:
    """One lexeme with its 1-based source position."""

    type: TokenType
    text: str
    line: int
    column: int

    @property
    def position(self) -> Tuple[int, int]:
        return (self.line, self.column)

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text.lower() in names

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.type is TokenType.EOF:
            return "end of input"
        return repr(self.text)


class Lexer:
    """Scan SQL text into a token list (EOF-terminated)."""

    def __init__(self, source: str) -> None:
        self.source = source
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokens(self) -> List[Token]:
        out: List[Token] = []
        while True:
            token = self._next_token()
            out.append(token)
            if token.type is TokenType.EOF:
                return out

    # ------------------------------------------------------------------

    def _error(self, message: str) -> SqlSyntaxError:
        return SqlSyntaxError(message, (self._line, self._column), self.source)

    def _advance(self, count: int) -> None:
        for _ in range(count):
            if self._pos < len(self.source) and self.source[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_whitespace_and_comments(self) -> Optional[Token]:
        """Skip whitespace and plain comments; return a HINT token if found."""
        while self._pos < len(self.source):
            char = self.source[self._pos]
            if char.isspace():
                self._advance(1)
                continue
            if self.source.startswith("--", self._pos):
                end = self.source.find("\n", self._pos)
                self._advance((end if end != -1 else len(self.source)) - self._pos)
                continue
            if self.source.startswith("/*", self._pos):
                is_hint = self.source.startswith("/*+", self._pos)
                line, column = self._line, self._column
                end = self.source.find("*/", self._pos + 2)
                if end == -1:
                    raise self._error("unterminated comment")
                body = self.source[self._pos + (3 if is_hint else 2) : end]
                self._advance(end + 2 - self._pos)
                if is_hint:
                    return Token(TokenType.HINT, body.strip(), line, column)
                continue
            break
        return None

    def _next_token(self) -> Token:
        hint = self._skip_whitespace_and_comments()
        if hint is not None:
            return hint
        if self._pos >= len(self.source):
            return Token(TokenType.EOF, "", self._line, self._column)

        line, column = self._line, self._column
        char = self.source[self._pos]

        singles = {
            ",": TokenType.COMMA,
            ".": TokenType.DOT,
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            "*": TokenType.STAR,
            ";": TokenType.SEMICOLON,
            "-": TokenType.MINUS,
            "+": TokenType.PLUS,
            "/": TokenType.SLASH,
        }
        if char in singles:
            self._advance(1)
            return Token(singles[char], char, line, column)

        if char == "?":
            self._advance(1)
            return Token(TokenType.PARAMETER, "?", line, column)

        if char == "$":
            match = _PARAMETER_RE.match(self.source, self._pos)
            if match is None:
                raise self._error("expected a parameter number after '$' (e.g. $1)")
            text = match.group(0)
            self._advance(len(text))
            return Token(TokenType.PARAMETER, text, line, column)

        for operator in _OPERATORS:
            if self.source.startswith(operator, self._pos):
                self._advance(len(operator))
                return Token(TokenType.OPERATOR, operator, line, column)

        if char == "'":
            end = self.source.find("'", self._pos + 1)
            if end == -1:
                raise self._error("unterminated string literal")
            text = self.source[self._pos + 1 : end]
            self._advance(end + 1 - self._pos)
            return Token(TokenType.STRING, text, line, column)

        match = _NUMBER_RE.match(self.source, self._pos)
        if match:
            text = match.group(0)
            self._advance(len(text))
            kind = (
                TokenType.INTEGER
                if match.group(1) is None and match.group(2) is None
                else TokenType.FLOAT
            )
            return Token(kind, text, line, column)

        match = _IDENTIFIER_RE.match(self.source, self._pos)
        if match:
            text = match.group(0)
            self._advance(len(text))
            kind = TokenType.KEYWORD if text.lower() in KEYWORDS else TokenType.IDENTIFIER
            return Token(kind, text, line, column)

        raise self._error(f"unexpected character {char!r}")


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper: scan *source* into an EOF-terminated token list."""
    return Lexer(source).tokens()
