"""The adaptive query processing loop (data-partitioned model of [15]).

The controller processes a stream slice at a time.  At every re-optimization
point (every ``reoptimize_every`` slices) it feeds the statistics observed so
far to its optimizer, obtains a (possibly new) plan, migrates state if the
plan changed, and executes the next slice with that plan.  Three optimizer
modes cover the paper's comparisons:

* ``incremental`` — the declarative optimizer re-optimized incrementally
  (our approach);
* ``non_incremental`` — a Volcano-style optimizer re-run from scratch at every
  re-optimization point (the paper's "Tukwila-style" comparison in Figure 9);
* ``static`` — no adaptation: a fixed plan is used for every slice (the
  "good plan" / "bad plan" series of Figure 10).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Sequence

from repro.adaptive.migration import MigrationStats, StateMigrator
from repro.adaptive.monitor import RuntimeMonitor
from repro.catalog.catalog import Catalog
from repro.common.errors import AdaptationError
from repro.engine import DEFAULT_ENGINE, make_executor, validate_engine
from repro.optimizer.baselines.volcano import VolcanoOptimizer
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.optimizer.tables import PruningConfig
from repro.relational.plan import PhysicalPlan
from repro.relational.query import Query
from repro.streams.windows import StreamSlice, WindowManager


class AdaptationMode(Enum):
    INCREMENTAL = "incremental"
    NON_INCREMENTAL = "non-incremental"
    STATIC = "static"


@dataclass
class SliceReport:
    """What happened while processing one slice."""

    slice_index: int
    reoptimize_seconds: float
    execute_seconds: float
    migration: MigrationStats
    plan_changed: bool
    plan_cost: float
    output_rows: int
    window_rows: int

    @property
    def total_seconds(self) -> float:
        return self.reoptimize_seconds + self.execute_seconds + self.migration.elapsed_seconds


@dataclass
class AdaptiveRunResult:
    """Aggregate outcome of processing a whole stream."""

    reports: List[SliceReport] = field(default_factory=list)

    @property
    def total_reoptimize_seconds(self) -> float:
        return sum(report.reoptimize_seconds for report in self.reports)

    @property
    def total_execute_seconds(self) -> float:
        return sum(report.execute_seconds for report in self.reports)

    @property
    def total_seconds(self) -> float:
        return sum(report.total_seconds for report in self.reports)

    @property
    def plan_switches(self) -> int:
        return sum(1 for report in self.reports if report.plan_changed)

    @property
    def total_output_rows(self) -> int:
        return sum(report.output_rows for report in self.reports)


class AdaptiveController:
    """Slice-at-a-time adaptive execution with pluggable re-optimization."""

    def __init__(
        self,
        query: Query,
        catalog: Catalog,
        mode: AdaptationMode = AdaptationMode.INCREMENTAL,
        cumulative: bool = True,
        reoptimize_every: int = 1,
        pruning: Optional[PruningConfig] = None,
        static_plan: Optional[PhysicalPlan] = None,
        cost_parameters=None,
        engine: str = DEFAULT_ENGINE,
        batch_size: Optional[int] = None,
    ) -> None:
        self.query = query
        self.catalog = catalog
        self.mode = mode
        self.engine = validate_engine(engine)
        self.batch_size = batch_size
        self.reoptimize_every = max(1, reoptimize_every)
        self.monitor = RuntimeMonitor(cumulative=cumulative)
        self.migrator = StateMigrator(query)
        self._static_plan = static_plan
        if mode is AdaptationMode.STATIC:
            if static_plan is None:
                raise AdaptationError("static mode needs a plan to execute")
            self.optimizer = None
        elif mode is AdaptationMode.INCREMENTAL:
            self.optimizer = DeclarativeOptimizer(
                query,
                catalog,
                pruning=pruning or PruningConfig.full(),
                cost_parameters=cost_parameters,
            )
        else:
            self.optimizer = VolcanoOptimizer(query, catalog, cost_parameters=cost_parameters)
        self._initialized = False
        self.current_plan: Optional[PhysicalPlan] = static_plan

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(
        self,
        slices: Sequence[StreamSlice],
        window_manager: Optional[WindowManager] = None,
    ) -> AdaptiveRunResult:
        """Process every slice, re-optimizing on the configured cadence."""
        windows = window_manager or WindowManager(self.query)
        result = AdaptiveRunResult()
        for stream_slice in slices:
            windows.advance(stream_slice)
            data = windows.materialize()
            report = self._process_slice(stream_slice, data, windows)
            result.reports.append(report)
        return result

    def _process_slice(
        self,
        stream_slice: StreamSlice,
        data: Dict[str, List[dict]],
        windows: WindowManager,
    ) -> SliceReport:
        previous_plan = self.current_plan
        reopt_seconds = 0.0
        if self.mode is not AdaptationMode.STATIC and self._should_reoptimize(stream_slice):
            reopt_seconds = self._reoptimize()
        if self.current_plan is None:
            raise AdaptationError("no plan available to execute")

        plan_changed = (
            previous_plan is not None
            and previous_plan.join_order_signature() != self.current_plan.join_order_signature()
        )
        migration = (
            self.migrator.migrate(previous_plan, self.current_plan, data)
            if plan_changed
            else MigrationStats.empty()
        )

        executor = make_executor(self.engine, self.query, data, batch_size=self.batch_size)
        execution = executor.execute(self.current_plan)
        self.monitor.record_execution(execution)
        self.monitor.record_window_sizes(windows.window_sizes())

        return SliceReport(
            slice_index=stream_slice.index,
            reoptimize_seconds=reopt_seconds,
            execute_seconds=execution.elapsed_seconds,
            migration=migration,
            plan_changed=plan_changed,
            plan_cost=self.current_plan.total_cost,
            output_rows=execution.row_count,
            window_rows=windows.total_window_rows(),
        )

    # ------------------------------------------------------------------
    # Re-optimization
    # ------------------------------------------------------------------

    def _should_reoptimize(self, stream_slice: StreamSlice) -> bool:
        if not self._initialized:
            return True
        return stream_slice.index % self.reoptimize_every == 0

    def _reoptimize(self) -> float:
        assert self.optimizer is not None
        started = time.perf_counter()
        if self.mode is AdaptationMode.INCREMENTAL:
            declarative = self.optimizer
            if not self._initialized:
                outcome = declarative.optimize()
            else:
                deltas = self.monitor.produce_deltas(declarative)
                if deltas:
                    outcome = declarative.reoptimize(deltas)
                else:
                    return time.perf_counter() - started
        else:
            volcano = self.optimizer
            self.monitor.produce_deltas(volcano)
            volcano.invalidate_statistics()
            outcome = volcano.optimize()
        self.current_plan = outcome.plan
        self._initialized = True
        return time.perf_counter() - started
