"""Plan-switch state migration (the paper uses CAPE's "moving state" strategy).

When the adaptive controller switches plans at a slice boundary, the state of
stateful operators (hash tables over window contents) must be made available
to the new plan.  Following CAPE's moving-state strategy, the migrator
rebuilds the hash-join build sides required by the new plan directly from the
current window contents and reports how much work that took, so the adaptive
experiments can account for (or at least measure) migration overhead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.relational.expressions import Expression
from repro.relational.plan import PhysicalOperator, PhysicalPlan
from repro.relational.query import Query

Row = Dict[str, object]


@dataclass(frozen=True)
class MigrationStats:
    """Cost of migrating operator state into a new plan."""

    joins_rebuilt: int
    tuples_rehashed: int
    elapsed_seconds: float

    @classmethod
    def empty(cls) -> "MigrationStats":
        return cls(0, 0, 0.0)


class StateMigrator:
    """Rebuilds join state for a new plan from materialized window contents."""

    def __init__(self, query: Query) -> None:
        self.query = query

    def migrate(
        self,
        old_plan: Optional[PhysicalPlan],
        new_plan: PhysicalPlan,
        window_data: Mapping[str, Sequence[Row]],
    ) -> MigrationStats:
        """Migrate state from ``old_plan`` to ``new_plan``.

        If the plans share their join-order signature no work is needed.
        Otherwise every hash join of the new plan gets its build side rebuilt
        from the window contents of the relations below it.
        """
        if (
            old_plan is not None
            and old_plan.join_order_signature() == new_plan.join_order_signature()
        ):
            return MigrationStats.empty()
        started = time.perf_counter()
        joins_rebuilt = 0
        tuples_rehashed = 0
        for node in new_plan.iter_nodes():
            if node.operator not in (
                PhysicalOperator.HASH_JOIN,
                PhysicalOperator.INDEX_NL_JOIN,
            ):
                continue
            build_side = node.right if node.right is not None else None
            if build_side is None:
                continue
            joins_rebuilt += 1
            tuples_rehashed += self._rebuild_hash_state(build_side.expression, window_data)
        elapsed = time.perf_counter() - started
        return MigrationStats(joins_rebuilt, tuples_rehashed, elapsed)

    def _rebuild_hash_state(
        self, expression: Expression, window_data: Mapping[str, Sequence[Row]]
    ) -> int:
        """Build a hash index over the base rows feeding *expression*."""
        rehashed = 0
        for alias in expression:
            rows = window_data.get(alias, ())
            index: Dict[Tuple, List[Row]] = {}
            key_columns = self._join_columns(alias)
            for row in rows:
                key = tuple(row.get(column) for column in key_columns)
                index.setdefault(key, []).append(row)
                rehashed += 1
        return rehashed

    def _join_columns(self, alias: str) -> List[str]:
        columns: List[str] = []
        for predicate in self.query.join_predicates:
            for column in (predicate.left, predicate.right):
                if column.alias == alias and column.column not in columns:
                    columns.append(column.column)
        return columns or ["__all__"]
