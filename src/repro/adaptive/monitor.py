"""Runtime statistics monitoring for adaptive query processing.

During execution the engine (row or vectorized — both report through the
same :class:`~repro.engine.executor.ExecutionResult` contract) reports the
observed cardinality of every operator output.  The monitor turns those
observations into the statistics deltas that drive incremental
re-optimization, and additionally accumulates per-operator execution time
(keyed by the plan's stable operator labels; each value is *inclusive* of the
operator's subtree, like ``EXPLAIN ANALYZE`` totals).  Two accumulation modes
mirror the paper's Figure 10 series:

* **cumulative** — observations are averaged over every slice seen so far
  ("AQP-Cumulative"); estimates stabilize as the stream progresses;
* **non-cumulative** — only the latest slice's observations are used
  ("AQP-NonCumulative"); the optimizer chases the most recent distribution.

Observation histories are kept at three scopes, narrowest wins on read:

* **(session, query)** — recorded when the execution carried a session id
  (the serving tier tags every statement with its connection's session).
  Concurrent sessions share plans through the cross-connection plan cache,
  but a session's cardinality feedback — e.g. a parameter value selecting a
  very different slice of the data — stays its own;
* **query** — the PR 3 scoping: statements sharing a join footprint under
  one Database-wide monitor do not conflate each other's estimates;
* **global** — the fallback pool for executions carrying no query name.

The monitor is shared by every connection and executor-pool worker thread of
a :class:`~repro.api.database.Database`, so all state is lock-protected.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cost.overrides import StatisticsDelta
from repro.engine.executor import ExecutionResult
from repro.relational.expressions import Expression

#: scope key for an observation history: (session or None, query name)
ScopeKey = Tuple[Optional[str], str]


@dataclass
class ObservationHistory:
    """Running history of observed cardinalities for one expression."""

    observations: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.observations.append(value)

    @property
    def latest(self) -> float:
        return self.observations[-1]

    @property
    def mean(self) -> float:
        return sum(self.observations) / len(self.observations)


class RuntimeMonitor:
    """Collects observed cardinalities and produces statistics deltas."""

    def __init__(
        self,
        cumulative: bool = True,
        minimum_rows: float = 1.0,
        change_threshold: float = 0.05,
    ) -> None:
        self.cumulative = cumulative
        self.minimum_rows = minimum_rows
        #: relative change below which an observation is not worth a new delta;
        #: this is what makes re-optimization overhead decay as the stream (and
        #: the statistics) converge, as in the paper's Figure 9.
        self.change_threshold = change_threshold
        self._lock = threading.RLock()
        self._history: Dict[Expression, ObservationHistory] = {}
        #: scoped histories: ``((session, query), expression)``.  A ``None``
        #: session is the per-query scope; a named session layers on top so
        #: concurrent sessions sharing one cached plan keep their own feedback.
        self._scoped: Dict[Tuple[ScopeKey, Expression], ObservationHistory] = {}
        #: relation-count scaling: window sizes per alias observed per slice
        self._alias_rows: Dict[str, ObservationHistory] = {}
        #: last-emitted values, keyed per consuming (session, query) so one
        #: consumer's emission does not suppress another's (threshold state
        #: is per plan per session)
        self._last_emitted: Dict[object, float] = {}
        #: cumulative execution seconds per operator label across slices
        self._operator_seconds: Dict[str, float] = {}
        #: cumulative worker-side seconds per operator label (the time pool
        #: workers — threads or processes — spent on an operator's morsels,
        #: which the parent-side operator clock cannot see for processes)
        self._worker_seconds: Dict[str, float] = {}
        #: session ids that have recorded at least one execution
        self._sessions: Dict[str, int] = {}

    # -- recording -----------------------------------------------------------

    def record_execution(self, result: ExecutionResult, session: Optional[str] = None) -> None:
        """Record every operator output cardinality from one slice's execution.

        *session* scopes the observations to the connection (or wire session)
        that ran the statement, on top of the per-query scope the result's
        ``query_name`` provides.
        """
        with self._lock:
            if session is not None:
                self._sessions[session] = self._sessions.get(session, 0) + 1
            for expression, rows in result.observed_cardinalities.items():
                value = max(float(rows), self.minimum_rows)
                self._history.setdefault(expression, ObservationHistory()).add(value)
                if result.query_name:
                    self._scoped.setdefault(
                        ((None, result.query_name), expression), ObservationHistory()
                    ).add(value)
                    if session is not None:
                        self._scoped.setdefault(
                            ((session, result.query_name), expression), ObservationHistory()
                        ).add(value)
            for operator_key, seconds in result.operator_timings.items():
                self._operator_seconds[operator_key] = (
                    self._operator_seconds.get(operator_key, 0.0) + seconds
                )
            for operator_key, seconds in result.operator_worker_seconds.items():
                self._worker_seconds[operator_key] = (
                    self._worker_seconds.get(operator_key, 0.0) + seconds
                )

    def record_window_sizes(self, sizes: Mapping[str, int]) -> None:
        with self._lock:
            for alias, rows in sizes.items():
                history = self._alias_rows.setdefault(alias, ObservationHistory())
                history.add(max(float(rows), self.minimum_rows))

    # -- reads ----------------------------------------------------------------

    def observed(
        self,
        expression: Expression,
        query_name: Optional[str] = None,
        session: Optional[str] = None,
    ) -> Optional[float]:
        """The accumulated observation for *expression*.

        The narrowest populated scope wins: (session, query) when *session*
        is given, then the query scope, then the global history — so
        consumers sharing one monitor read their own behaviour first.
        """
        with self._lock:
            history = None
            if query_name is not None:
                if session is not None:
                    history = self._scoped.get(((session, query_name), expression))
                if history is None:
                    history = self._scoped.get(((None, query_name), expression))
            if history is None:
                history = self._history.get(expression)
            if history is None:
                return None
            return history.mean if self.cumulative else history.latest

    def observed_alias_rows(self, alias: str) -> Optional[float]:
        with self._lock:
            history = self._alias_rows.get(alias)
            if history is None:
                return None
            return history.mean if self.cumulative else history.latest

    def expressions(self) -> List[Expression]:
        with self._lock:
            return sorted(self._history, key=lambda expression: (len(expression), expression.name))

    def observation_count(self) -> int:
        """Total recorded observations across every expression."""
        with self._lock:
            return sum(len(history.observations) for history in self._history.values())

    def session_names(self) -> List[str]:
        """Sessions that have recorded executions, in first-seen order."""
        with self._lock:
            return list(self._sessions)

    def operator_seconds(self) -> Dict[str, float]:
        """Total execution seconds per operator label, across recorded slices.

        Keys are the plan's stable per-node labels (``"op (aliases)#n"``), so
        a plan switch mid-stream contributes under the new plan's labels.
        Each value is inclusive of the operator's whole subtree (both engines
        time a node from entry, children included), so values of nested
        operators overlap — compare siblings, don't sum ancestors.
        """
        with self._lock:
            return dict(self._operator_seconds)

    def worker_operator_seconds(self) -> Dict[str, float]:
        """Worker-side seconds per operator label, across recorded slices.

        Populated only by the parallel executors: the summed time pool
        workers spent executing an operator's morsels.  For the process
        executor this is the only view of worker CPU time — the parent's
        ``operator_seconds`` mostly measures dispatch-and-wait there.
        """
        with self._lock:
            return dict(self._worker_seconds)

    # -- delta production -------------------------------------------------------

    def produce_deltas(self, optimizer, session: Optional[str] = None) -> List[StatisticsDelta]:
        """Translate current observations into optimizer statistics deltas.

        ``optimizer`` is any object exposing ``observe_cardinality`` /
        ``update_table_cardinality`` with the declarative optimizer's
        signatures (the procedural baselines share them through
        :class:`~repro.optimizer.baselines.base.ProceduralOptimizerBase`).

        Observations are scoped to the optimizer's own query: a monitor shared
        across many statements (the Database-wide monitor of the DB-API layer)
        only feeds each optimizer the aliases and expressions its query
        actually contains.  With *session*, that session's own observations
        are preferred over the query-wide pool, so one session's cardinality
        feedback does not steer another session's copy of the same plan.
        """
        with self._lock:
            deltas: List[StatisticsDelta] = []
            query_name = optimizer.query.name
            query_aliases = set(optimizer.query.aliases)
            for alias in sorted(self._alias_rows):
                if alias not in query_aliases:
                    continue
                observed_rows = self.observed_alias_rows(alias)
                if observed_rows is None:
                    continue
                table = optimizer.query.relation(alias).table
                base = (
                    optimizer.catalog.row_count(table)
                    if optimizer.catalog.has_stats(table)
                    else None
                )
                if base is None or base <= 0:
                    continue
                factor = max(observed_rows / base, 1e-6)
                if not self._worth_emitting((session, query_name, "alias", alias), factor):
                    continue
                deltas.append(optimizer.update_table_cardinality(alias, factor))
            # Prefer the narrowest scope that has data: this session's own
            # recorded expressions, then the query's, then — only for monitors
            # whose executions carried no query name — the global pool.
            scoped = []
            if session is not None:
                scoped = self._scoped_expressions((session, query_name))
            if not scoped:
                scoped = self._scoped_expressions((None, query_name))
            for expression in scoped if scoped else self.expressions():
                if len(expression) < 2:
                    continue
                if not expression.aliases <= query_aliases:
                    continue
                observed_rows = self.observed(expression, query_name, session)
                if observed_rows is None:
                    continue
                if not self._worth_emitting(
                    (session, query_name, "expr", expression), observed_rows
                ):
                    continue
                if hasattr(optimizer, "observe_cardinality"):
                    deltas.append(optimizer.observe_cardinality(expression, observed_rows))
            return [delta for delta in deltas if not delta.is_noop]

    def _scoped_expressions(self, scope: ScopeKey) -> List[Expression]:
        return sorted(
            {expr for (key, expr) in self._scoped if key == scope},
            key=lambda expr: (len(expr), expr.name),
        )

    def _worth_emitting(self, key: object, value: float) -> bool:
        """Skip observations that barely changed since the last emitted delta."""
        previous = self._last_emitted.get(key)
        if previous is not None and previous > 0:
            relative_change = abs(value - previous) / previous
            if relative_change < self.change_threshold:
                return False
        self._last_emitted[key] = value
        return True
