"""Runtime statistics monitoring for adaptive query processing.

During execution the engine (row or vectorized — both report through the
same :class:`~repro.engine.executor.ExecutionResult` contract) reports the
observed cardinality of every operator output.  The monitor turns those
observations into the statistics deltas that drive incremental
re-optimization, and additionally accumulates per-operator execution time
(keyed by the plan's stable operator labels; each value is *inclusive* of the
operator's subtree, like ``EXPLAIN ANALYZE`` totals).  Two accumulation modes
mirror the paper's Figure 10 series:

* **cumulative** — observations are averaged over every slice seen so far
  ("AQP-Cumulative"); estimates stabilize as the stream progresses;
* **non-cumulative** — only the latest slice's observations are used
  ("AQP-NonCumulative"); the optimizer chases the most recent distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cost.overrides import StatisticsDelta
from repro.engine.executor import ExecutionResult
from repro.relational.expressions import Expression


@dataclass
class ObservationHistory:
    """Running history of observed cardinalities for one expression."""

    observations: List[float] = field(default_factory=list)

    def add(self, value: float) -> None:
        self.observations.append(value)

    @property
    def latest(self) -> float:
        return self.observations[-1]

    @property
    def mean(self) -> float:
        return sum(self.observations) / len(self.observations)


class RuntimeMonitor:
    """Collects observed cardinalities and produces statistics deltas."""

    def __init__(
        self,
        cumulative: bool = True,
        minimum_rows: float = 1.0,
        change_threshold: float = 0.05,
    ) -> None:
        self.cumulative = cumulative
        self.minimum_rows = minimum_rows
        #: relative change below which an observation is not worth a new delta;
        #: this is what makes re-optimization overhead decay as the stream (and
        #: the statistics) converge, as in the paper's Figure 9.
        self.change_threshold = change_threshold
        self._history: Dict[Expression, ObservationHistory] = {}
        #: per-query histories: a monitor shared across many statements keeps
        #: each query's observations apart (same alias set, different filters
        #: or parameter values must not pollute each other's estimates).
        self._scoped: Dict[Tuple[str, Expression], ObservationHistory] = {}
        #: relation-count scaling: window sizes per alias observed per slice
        self._alias_rows: Dict[str, ObservationHistory] = {}
        #: last-emitted values, keyed per consuming query so one consumer's
        #: emission does not suppress another's (threshold state is per plan)
        self._last_emitted: Dict[object, float] = {}
        #: cumulative execution seconds per operator label across slices
        self._operator_seconds: Dict[str, float] = {}

    # -- recording -----------------------------------------------------------

    def record_execution(self, result: ExecutionResult) -> None:
        """Record every operator output cardinality from one slice's execution."""
        for expression, rows in result.observed_cardinalities.items():
            value = max(float(rows), self.minimum_rows)
            self._history.setdefault(expression, ObservationHistory()).add(value)
            if result.query_name:
                self._scoped.setdefault(
                    (result.query_name, expression), ObservationHistory()
                ).add(value)
        for operator_key, seconds in result.operator_timings.items():
            self._operator_seconds[operator_key] = (
                self._operator_seconds.get(operator_key, 0.0) + seconds
            )

    def record_window_sizes(self, sizes: Mapping[str, int]) -> None:
        for alias, rows in sizes.items():
            history = self._alias_rows.setdefault(alias, ObservationHistory())
            history.add(max(float(rows), self.minimum_rows))

    # -- reads ----------------------------------------------------------------

    def observed(
        self, expression: Expression, query_name: Optional[str] = None
    ) -> Optional[float]:
        """The accumulated observation for *expression*.

        With *query_name*, observations recorded under that query are
        preferred (falling back to the global history), so consumers sharing
        one monitor read their own query's behaviour.
        """
        history = None
        if query_name is not None:
            history = self._scoped.get((query_name, expression))
        if history is None:
            history = self._history.get(expression)
        if history is None:
            return None
        return history.mean if self.cumulative else history.latest

    def observed_alias_rows(self, alias: str) -> Optional[float]:
        history = self._alias_rows.get(alias)
        if history is None:
            return None
        return history.mean if self.cumulative else history.latest

    def expressions(self) -> List[Expression]:
        return sorted(self._history, key=lambda expression: (len(expression), expression.name))

    def observation_count(self) -> int:
        """Total recorded observations across every expression."""
        return sum(len(history.observations) for history in self._history.values())

    def operator_seconds(self) -> Dict[str, float]:
        """Total execution seconds per operator label, across recorded slices.

        Keys are the plan's stable per-node labels (``"op (aliases)#n"``), so
        a plan switch mid-stream contributes under the new plan's labels.
        Each value is inclusive of the operator's whole subtree (both engines
        time a node from entry, children included), so values of nested
        operators overlap — compare siblings, don't sum ancestors.
        """
        return dict(self._operator_seconds)

    # -- delta production -------------------------------------------------------

    def produce_deltas(self, optimizer) -> List[StatisticsDelta]:
        """Translate current observations into optimizer statistics deltas.

        ``optimizer`` is any object exposing ``observe_cardinality`` /
        ``update_table_cardinality`` with the declarative optimizer's
        signatures (the procedural baselines share them through
        :class:`~repro.optimizer.baselines.base.ProceduralOptimizerBase`).

        Observations are scoped to the optimizer's own query: a monitor shared
        across many statements (the Database-wide monitor of the DB-API layer)
        only feeds each optimizer the aliases and expressions its query
        actually contains.
        """
        deltas: List[StatisticsDelta] = []
        query_name = optimizer.query.name
        query_aliases = set(optimizer.query.aliases)
        for alias in sorted(self._alias_rows):
            if alias not in query_aliases:
                continue
            observed_rows = self.observed_alias_rows(alias)
            if observed_rows is None:
                continue
            table = optimizer.query.relation(alias).table
            base = (
                optimizer.catalog.row_count(table)
                if optimizer.catalog.has_stats(table)
                else None
            )
            if base is None or base <= 0:
                continue
            factor = max(observed_rows / base, 1e-6)
            if not self._worth_emitting((query_name, "alias", alias), factor):
                continue
            deltas.append(optimizer.update_table_cardinality(alias, factor))
        # Prefer the query's own recorded expressions; only a monitor whose
        # executions carried no query name falls back to the global pool.
        scoped = sorted(
            {expr for (name, expr) in self._scoped if name == query_name},
            key=lambda expr: (len(expr), expr.name),
        )
        for expression in scoped if scoped else self.expressions():
            if len(expression) < 2:
                continue
            if not expression.aliases <= query_aliases:
                continue
            observed_rows = self.observed(expression, query_name)
            if observed_rows is None:
                continue
            if not self._worth_emitting((query_name, "expr", expression), observed_rows):
                continue
            if hasattr(optimizer, "observe_cardinality"):
                deltas.append(optimizer.observe_cardinality(expression, observed_rows))
        return [delta for delta in deltas if not delta.is_noop]

    def _worth_emitting(self, key: object, value: float) -> bool:
        """Skip observations that barely changed since the last emitted delta."""
        previous = self._last_emitted.get(key)
        if previous is not None and previous > 0:
            relative_change = abs(value - previous) / previous
            if relative_change < self.change_threshold:
                return False
        self._last_emitted[key] = value
        return True
