"""Adaptive query processing: monitoring, state migration, and the AQP loop."""

from repro.adaptive.controller import (
    AdaptationMode,
    AdaptiveController,
    AdaptiveRunResult,
    SliceReport,
)
from repro.adaptive.migration import MigrationStats, StateMigrator
from repro.adaptive.monitor import ObservationHistory, RuntimeMonitor

__all__ = [
    "AdaptationMode",
    "AdaptiveController",
    "AdaptiveRunResult",
    "SliceReport",
    "MigrationStats",
    "StateMigrator",
    "ObservationHistory",
    "RuntimeMonitor",
]
