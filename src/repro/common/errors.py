"""Exception hierarchy shared by all repro subpackages."""


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A table, column or index reference does not match the schema."""


class CatalogError(ReproError):
    """Statistics or metadata were requested for an unknown object."""


class QueryError(ReproError):
    """The query specification is malformed (unknown alias, bad predicate...)."""


class OptimizationError(ReproError):
    """The optimizer could not produce a plan for the query."""


class ExecutionError(ReproError):
    """The execution engine failed while running a physical plan."""


class AdaptationError(ReproError):
    """The adaptive controller was asked to do something inconsistent."""
