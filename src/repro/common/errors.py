"""Exception hierarchy shared by all repro subpackages."""

from typing import Optional, Tuple


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A table, column or index reference does not match the schema."""


class CatalogError(ReproError):
    """Statistics or metadata were requested for an unknown object."""


class QueryError(ReproError):
    """The query specification is malformed (unknown alias, bad predicate...)."""


class OptimizationError(ReproError):
    """The optimizer could not produce a plan for the query."""


class ExecutionError(ReproError):
    """The execution engine failed while running a physical plan."""


class AdaptationError(ReproError):
    """The adaptive controller was asked to do something inconsistent."""


class SqlError(ReproError):
    """Base class for errors raised by the SQL frontend.

    Carries an optional 1-based ``(line, column)`` position and the source
    text so messages can point at the offending token::

        SQL error at line 1, column 27: unknown column 'c_custky'
          SELECT * FROM customer WHERE c_custky = 1
                                       ^
    """

    def __init__(
        self,
        message: str,
        position: Optional[Tuple[int, int]] = None,
        source: Optional[str] = None,
    ) -> None:
        self.bare_message = message
        self.position = position
        self.source = source
        super().__init__(self._render(message, position, source))

    @staticmethod
    def _render(
        message: str,
        position: Optional[Tuple[int, int]],
        source: Optional[str],
    ) -> str:
        if position is None:
            return message
        line, column = position
        rendered = f"at line {line}, column {column}: {message}"
        if source is not None:
            lines = source.splitlines()
            if 1 <= line <= len(lines):
                rendered += f"\n  {lines[line - 1]}\n  {' ' * (column - 1)}^"
        return rendered


class SqlSyntaxError(SqlError):
    """The query text could not be tokenized or parsed."""


class SqlBindingError(SqlError):
    """The query parsed but references unknown tables/columns or is ambiguous."""
