"""Shared utilities: errors and small helpers used across subpackages."""

from repro.common.errors import (
    AdaptationError,
    CatalogError,
    ExecutionError,
    OptimizationError,
    QueryError,
    ReproError,
    SchemaError,
)

__all__ = [
    "ReproError",
    "SchemaError",
    "CatalogError",
    "QueryError",
    "OptimizationError",
    "ExecutionError",
    "AdaptationError",
]
