"""Stream processing substrate: windows, slices, and the Linear Road workload."""

from repro.streams.linear_road import (
    GeneratorConfig,
    LinearRoadGenerator,
    linear_road_catalog,
    linear_road_schema,
    segtolls_query,
)
from repro.streams.windows import StreamSlice, WindowManager, slice_stream

__all__ = [
    "GeneratorConfig",
    "LinearRoadGenerator",
    "linear_road_catalog",
    "linear_road_schema",
    "segtolls_query",
    "StreamSlice",
    "WindowManager",
    "slice_stream",
]
