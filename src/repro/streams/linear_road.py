"""A Linear Road-style stream workload.

The paper's adaptive experiments use the Linear Road benchmark's largest
query, ``SegToll``, simplified into a five-way windowed self-join
(``SegTollS``, Table 2) over a stream of car location reports whose
characteristics "frequently change".  The original generator is not available
offline, so this module provides a synthetic substitute that preserves the
property the experiments rely on: the distribution of reports across
expressways and segments drifts and bursts over time, so the best join order
changes from slice to slice.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.catalog.catalog import Catalog
from repro.catalog.statistics import TableStats
from repro.relational.expressions import ColumnRef
from repro.relational.predicates import ComparisonOp
from repro.relational.query import (
    AggregateFunction,
    Query,
    QueryBuilder,
    WindowKind,
    WindowSpec,
)
from repro.relational.schema import Column, Index, Schema, Table
from repro.streams.windows import StreamSlice, slice_stream

Row = Dict[str, object]

STREAM_TABLE = "carlocstr"


def linear_road_schema() -> Schema:
    """Schema of the car-location report stream."""
    table = Table(
        STREAM_TABLE,
        [
            Column("carid"),
            Column("speed"),
            Column("expway"),
            Column("lane"),
            Column("dir"),
            Column("seg"),
            Column("xpos"),
            Column("t"),
        ],
    )
    indexes = [
        Index("idx_carloc_carid", STREAM_TABLE, "carid"),
        Index("idx_carloc_seg", STREAM_TABLE, "seg"),
    ]
    return Schema(tables=[table], indexes=indexes)


def segtolls_query() -> Query:
    """The paper's SegTollS: a five-way windowed self-join (Table 2)."""
    partition_r2 = (
        ColumnRef("r2", "expway"),
        ColumnRef("r2", "dir"),
        ColumnRef("r2", "seg"),
    )
    return (
        QueryBuilder("SegTollS")
        .scan(STREAM_TABLE, alias="r1", window=WindowSpec(WindowKind.TIME, 300))
        .scan(
            STREAM_TABLE,
            alias="r2",
            window=WindowSpec(WindowKind.TUPLES, 1, partition_r2),
        )
        .scan(
            STREAM_TABLE,
            alias="r3",
            window=WindowSpec(WindowKind.TUPLES, 1, (ColumnRef("r3", "carid"),)),
        )
        .scan(STREAM_TABLE, alias="r4", window=WindowSpec(WindowKind.TIME, 30))
        .scan(
            STREAM_TABLE,
            alias="r5",
            window=WindowSpec(WindowKind.TUPLES, 4, (ColumnRef("r5", "carid"),)),
        )
        .join_on("r2.expway", "r3.expway")
        .join_on("r2.seg", "r3.seg", ComparisonOp.LT)
        .join_on("r3.carid", "r4.carid")
        .join_on("r3.carid", "r5.carid")
        .join_on("r1.expway", "r2.expway")
        .join_on("r1.dir", "r2.dir")
        .join_on("r1.seg", "r2.seg")
        .filter("r2.dir", ComparisonOp.EQ, 0, selectivity=0.5)
        .filter("r3.dir", ComparisonOp.EQ, 0, selectivity=0.5)
        .select("r1.expway", "r1.dir", "r1.seg")
        .group_by("r2.expway", "r2.dir", "r2.seg")
        .aggregate(AggregateFunction.COUNT, "r5.xpos", distinct=True)
        .build()
    )


@dataclass
class GeneratorConfig:
    """Knobs of the synthetic Linear Road-style generator."""

    expressways: int = 3
    segments: int = 100
    cars: int = 400
    reports_per_second: int = 120
    #: how strongly traffic concentrates on the moving hotspot segment
    hotspot_strength: float = 3.0
    #: period (seconds) of the hotspot drifting across segments
    hotspot_period: float = 40.0
    #: probability per second of a burst (accident) pinning traffic to a segment
    burst_probability: float = 0.08
    burst_duration: float = 5.0
    seed: int = 13


class LinearRoadGenerator:
    """Generates timestamped car-location reports with drifting distributions."""

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config or GeneratorConfig()
        self._rng = random.Random(self.config.seed)

    def generate(self, duration_seconds: int) -> List[Row]:
        """Reports for ``duration_seconds`` seconds of simulated time."""
        config = self.config
        rng = self._rng
        rows: List[Row] = []
        burst_until = -1.0
        burst_segment = 0
        burst_expway = 0
        for second in range(duration_seconds):
            if second > burst_until and rng.random() < config.burst_probability:
                burst_until = second + config.burst_duration
                burst_segment = rng.randrange(config.segments)
                burst_expway = rng.randrange(config.expressways)
            hotspot = int(
                (config.segments / 2)
                * (1 + math.sin(2 * math.pi * second / config.hotspot_period))
            ) % config.segments
            popular_expway = (second // 20) % config.expressways
            for _ in range(config.reports_per_second):
                in_burst = second <= burst_until
                if in_burst and rng.random() < 0.6:
                    expway = burst_expway
                    segment = burst_segment
                elif rng.random() < 0.7:
                    expway = popular_expway
                    spread = max(1, int(config.segments / (2 * config.hotspot_strength)))
                    segment = (hotspot + rng.randint(-spread, spread)) % config.segments
                else:
                    expway = rng.randrange(config.expressways)
                    segment = rng.randrange(config.segments)
                carid = rng.randrange(config.cars)
                rows.append(
                    {
                        "carid": carid,
                        "speed": rng.randint(0, 100),
                        "expway": expway,
                        "lane": rng.randint(0, 3),
                        "dir": rng.randint(0, 1),
                        "seg": segment,
                        "xpos": segment * 5280 + rng.randint(0, 5279),
                        "t": float(second),
                    }
                )
        return rows

    def generate_slices(self, duration_seconds: int, slice_duration: float) -> List[StreamSlice]:
        return slice_stream(self.generate(duration_seconds), slice_duration)


def linear_road_catalog(sample_rows: Optional[Sequence[Row]] = None) -> Catalog:
    """A catalog for the stream schema, optionally seeded from a sample.

    With no sample the catalog contains deliberately uninformative statistics,
    matching the adaptive experiments' setup where "the optimizer starts with
    zero statistical information on the data".
    """
    schema = linear_road_schema()
    catalog = Catalog(schema)
    if sample_rows:
        catalog.set_table_stats(STREAM_TABLE, TableStats.from_rows(list(sample_rows)))
    else:
        catalog.set_table_stats(STREAM_TABLE, TableStats(row_count=1000.0))
    return catalog
