"""Stream slices and window materialization.

The adaptive experiments process a stream one *slice* at a time (the paper's
data-partitioned adaptivity model [15]): execution pauses at slice boundaries,
the optimizer may pick a new plan, and the next slice is processed with that
plan.  Windowed relation references (``[size 300 time]``,
``[size 4 tuple partition by carid]``) see the stream history according to
their window specification; :class:`WindowManager` maintains that history and
materializes the current window contents per alias for the executor.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Sequence, Tuple

from repro.common.errors import ExecutionError
from repro.relational.query import Query, RelationRef, WindowKind

Row = Dict[str, object]


@dataclass(frozen=True)
class StreamSlice:
    """One slice of the input stream: rows arriving in [start_time, end_time)."""

    index: int
    start_time: float
    end_time: float
    rows: Tuple[Row, ...]

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def row_count(self) -> int:
        return len(self.rows)


class _AliasWindow:
    """Window state for one windowed relation reference."""

    def __init__(self, ref: RelationRef, timestamp_column: str) -> None:
        if ref.window is None:
            raise ExecutionError(f"relation {ref.alias} has no window specification")
        self.ref = ref
        self.window = ref.window
        self.timestamp_column = timestamp_column
        # Time windows keep a deque of (timestamp, row); tuple windows keep a
        # per-partition deque bounded at the window size.
        self._time_rows: Deque[Tuple[float, Row]] = deque()
        self._partitions: Dict[Tuple, Deque[Row]] = {}

    def append(self, row: Row, timestamp: float) -> None:
        if self.window.kind is WindowKind.TIME:
            self._time_rows.append((timestamp, row))
        else:
            key = tuple(row.get(column.column) for column in self.window.partition_by)
            bucket = self._partitions.setdefault(key, deque(maxlen=self.window.size))
            bucket.append(row)

    def evict(self, now: float) -> None:
        if self.window.kind is not WindowKind.TIME:
            return
        horizon = now - self.window.size
        while self._time_rows and self._time_rows[0][0] <= horizon:
            self._time_rows.popleft()

    def contents(self) -> List[Row]:
        if self.window.kind is WindowKind.TIME:
            return [row for _, row in self._time_rows]
        rows: List[Row] = []
        for bucket in self._partitions.values():
            rows.extend(bucket)
        return rows

    def row_count(self) -> int:
        if self.window.kind is WindowKind.TIME:
            return len(self._time_rows)
        return sum(len(bucket) for bucket in self._partitions.values())


class WindowManager:
    """Maintains window contents for every windowed alias of one query."""

    def __init__(self, query: Query, timestamp_column: str = "t") -> None:
        self.query = query
        self.timestamp_column = timestamp_column
        self._windows: Dict[str, _AliasWindow] = {}
        self._static: Dict[str, List[Row]] = {}
        for ref in query.relations:
            if ref.is_windowed:
                self._windows[ref.alias] = _AliasWindow(ref, timestamp_column)
        self.current_time: float = 0.0

    # -- feeding ----------------------------------------------------------

    def advance(self, stream_slice: StreamSlice) -> None:
        """Append a slice of stream rows and advance the clock."""
        for row in stream_slice.rows:
            timestamp = float(row.get(self.timestamp_column, stream_slice.end_time))
            for window in self._windows.values():
                window.append(row, timestamp)
        self.current_time = stream_slice.end_time
        for window in self._windows.values():
            window.evict(self.current_time)

    def set_static_table(self, alias: str, rows: Sequence[Row]) -> None:
        """Provide contents for a non-windowed relation (stored tables)."""
        self._static[alias] = list(rows)

    # -- reading -------------------------------------------------------------

    def materialize(self) -> Dict[str, List[Row]]:
        """Current contents per alias, consumable by the plan executor."""
        data: Dict[str, List[Row]] = {}
        for alias, window in self._windows.items():
            data[alias] = window.contents()
        data.update({alias: list(rows) for alias, rows in self._static.items()})
        return data

    def window_sizes(self) -> Dict[str, int]:
        return {alias: window.row_count() for alias, window in self._windows.items()}

    def total_window_rows(self) -> int:
        return sum(self.window_sizes().values())


def slice_stream(
    rows: Sequence[Row],
    slice_duration: float,
    timestamp_column: str = "t",
) -> List[StreamSlice]:
    """Group timestamped rows into consecutive fixed-duration slices."""
    if slice_duration <= 0:
        raise ExecutionError("slice duration must be positive")
    ordered = sorted(rows, key=lambda row: row.get(timestamp_column, 0))
    if not ordered:
        return []
    start = float(ordered[0].get(timestamp_column, 0))
    slices: List[StreamSlice] = []
    bucket: List[Row] = []
    index = 0
    boundary = start + slice_duration
    for row in ordered:
        timestamp = float(row.get(timestamp_column, 0))
        while timestamp >= boundary:
            slices.append(StreamSlice(index, boundary - slice_duration, boundary, tuple(bucket)))
            bucket = []
            index += 1
            boundary += slice_duration
        bucket.append(row)
    slices.append(StreamSlice(index, boundary - slice_duration, boundary, tuple(bucket)))
    return slices
