"""Tests for expressions (alias sets) and column references."""

import pytest

from repro.common.errors import QueryError
from repro.relational.expressions import ColumnRef, Expression


class TestColumnRef:
    def test_parse_round_trip(self):
        ref = ColumnRef.parse("orders.o_custkey")
        assert ref.alias == "orders"
        assert ref.column == "o_custkey"
        assert str(ref) == "orders.o_custkey"

    def test_parse_rejects_unqualified(self):
        with pytest.raises(QueryError):
            ColumnRef.parse("o_custkey")

    def test_parse_rejects_empty_parts(self):
        with pytest.raises(QueryError):
            ColumnRef.parse(".col")
        with pytest.raises(QueryError):
            ColumnRef.parse("alias.")

    def test_ordering_and_hashing(self):
        a = ColumnRef("a", "x")
        b = ColumnRef("b", "x")
        assert a < b
        assert len({a, ColumnRef("a", "x"), b}) == 2


class TestExpression:
    def test_canonical_name_is_sorted(self):
        assert Expression.of("b", "a").name == "(a b)"
        assert Expression.of("a", "b") == Expression.of("b", "a")

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            Expression([])

    def test_leaf_properties(self):
        leaf = Expression.leaf("orders")
        assert leaf.is_leaf
        assert leaf.sole_alias == "orders"
        assert len(leaf) == 1

    def test_sole_alias_requires_leaf(self):
        with pytest.raises(QueryError):
            Expression.of("a", "b").sole_alias

    def test_containment_and_membership(self):
        expr = Expression.of("a", "b", "c")
        assert "a" in expr
        assert "z" not in expr
        assert expr.contains(Expression.of("a", "b"))
        assert not Expression.of("a", "b").contains(expr)

    def test_union_and_difference(self):
        a = Expression.of("x", "y")
        b = Expression.leaf("z")
        assert a.union(b) == Expression.of("x", "y", "z")
        assert a.union(b).difference(b) == a

    def test_difference_to_empty_rejected(self):
        expr = Expression.leaf("x")
        with pytest.raises(QueryError):
            expr.difference(expr)

    def test_partitions_cover_all_splits_once(self):
        expr = Expression.of("a", "b", "c")
        splits = list(expr.partitions())
        # 2^(n-1) - 1 unordered splits for n aliases.
        assert len(splits) == 3
        for left, right in splits:
            assert left.aliases | right.aliases == expr.aliases
            assert not left.aliases & right.aliases
        # Each unordered split appears exactly once.
        keys = {frozenset((left.aliases, right.aliases)) for left, right in splits}
        assert len(keys) == 3

    def test_leaf_has_no_partitions(self):
        assert list(Expression.leaf("a").partitions()) == []

    def test_ordering_by_size_then_name(self):
        small = Expression.leaf("z")
        large = Expression.of("a", "b")
        assert small < large
        assert sorted([large, small]) == [small, large]

    def test_iteration_is_sorted(self):
        assert list(Expression.of("c", "a", "b")) == ["a", "b", "c"]

    def test_hashable_as_dict_key(self):
        mapping = {Expression.of("a", "b"): 1}
        assert mapping[Expression.of("b", "a")] == 1
