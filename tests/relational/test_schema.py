"""Tests for the schema objects (tables, columns, indexes)."""

import pytest

from repro.common.errors import SchemaError
from repro.relational.schema import Column, DataType, Index, Schema, Table


class TestDataType:
    def test_width_bytes_positive(self):
        for data_type in DataType:
            assert data_type.width_bytes > 0

    def test_string_wider_than_integer(self):
        assert DataType.STRING.width_bytes > DataType.INTEGER.width_bytes


class TestTable:
    def test_column_lookup(self):
        table = Table("t", [Column("a"), Column("b", DataType.FLOAT)])
        assert table.column("b").data_type is DataType.FLOAT
        assert table.has_column("a")
        assert not table.has_column("missing")

    def test_unknown_column_raises(self):
        table = Table("t", [Column("a")])
        with pytest.raises(SchemaError):
            table.column("zzz")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a"), Column("a")])

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a")], primary_key="b")

    def test_row_width_sums_column_widths(self):
        table = Table("t", [Column("a"), Column("b", DataType.STRING)])
        expected = DataType.INTEGER.width_bytes + DataType.STRING.width_bytes
        assert table.row_width_bytes == expected

    def test_column_names_order_preserved(self):
        table = Table("t", [Column("z"), Column("a"), Column("m")])
        assert table.column_names == ["z", "a", "m"]


class TestSchema:
    def test_add_and_lookup_tables(self):
        schema = Schema(tables=[Table("t", [Column("a")])])
        assert schema.has_table("t")
        assert schema.table("t").name == "t"
        assert schema.table_names == ["t"]

    def test_unknown_table_raises(self):
        schema = Schema()
        with pytest.raises(SchemaError):
            schema.table("missing")

    def test_duplicate_table_rejected(self):
        schema = Schema(tables=[Table("t", [Column("a")])])
        with pytest.raises(SchemaError):
            schema.add_table(Table("t", [Column("b")]))

    def test_index_registration_and_lookup(self):
        schema = Schema(
            tables=[Table("t", [Column("a"), Column("b")])],
            indexes=[Index("idx", "t", "a")],
        )
        assert schema.index_on_column("t", "a") is not None
        assert schema.index_on_column("t", "b") is None
        assert len(schema.indexes_on("t")) == 1

    def test_index_on_unknown_column_rejected(self):
        schema = Schema(tables=[Table("t", [Column("a")])])
        with pytest.raises(SchemaError):
            schema.add_index(Index("idx", "t", "zzz"))

    def test_index_on_unknown_table_rejected(self):
        schema = Schema()
        with pytest.raises(SchemaError):
            schema.add_index(Index("idx", "missing", "a"))

    def test_duplicate_index_rejected(self):
        schema = Schema(tables=[Table("t", [Column("a")])], indexes=[Index("idx", "t", "a")])
        with pytest.raises(SchemaError):
            schema.add_index(Index("idx", "t", "a"))

    def test_resolve_column(self):
        schema = Schema(tables=[Table("t", [Column("a")])])
        table, column = schema.resolve_column("t", "a")
        assert table.name == "t"
        assert column.name == "a"
