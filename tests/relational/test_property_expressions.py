"""Property-based tests for expressions and their partitions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.expressions import Expression

alias_sets = st.sets(st.sampled_from(["a", "b", "c", "d", "e", "f"]), min_size=1, max_size=6)


@given(alias_sets)
@settings(max_examples=100, deadline=None)
def test_partitions_are_exact_covers(aliases):
    expression = Expression(aliases)
    for left, right in expression.partitions():
        assert left.aliases | right.aliases == expression.aliases
        assert not (left.aliases & right.aliases)
        assert len(left) >= 1 and len(right) >= 1


@given(alias_sets)
@settings(max_examples=100, deadline=None)
def test_partition_count_formula(aliases):
    expression = Expression(aliases)
    count = sum(1 for _ in expression.partitions())
    n = len(aliases)
    expected = 2 ** (n - 1) - 1 if n >= 2 else 0
    assert count == expected


@given(alias_sets, alias_sets)
@settings(max_examples=100, deadline=None)
def test_union_contains_both(left_aliases, right_aliases):
    left = Expression(left_aliases)
    right = Expression(right_aliases)
    union = left.union(right)
    assert union.contains(left)
    assert union.contains(right)
    assert union.aliases == left.aliases | right.aliases


@given(alias_sets)
@settings(max_examples=50, deadline=None)
def test_name_is_canonical(aliases):
    expression = Expression(aliases)
    rebuilt = Expression(list(reversed(sorted(aliases))))
    assert expression == rebuilt
    assert expression.name == rebuilt.name
    assert hash(expression) == hash(rebuilt)
