"""Tests for physical plan trees."""

from repro.relational.expressions import Expression
from repro.relational.plan import PhysicalOperator, PhysicalPlan


def build_sample_plan() -> PhysicalPlan:
    scan_a = PhysicalPlan(
        PhysicalOperator.SEQ_SCAN, Expression.leaf("a"), local_cost=1.0, total_cost=1.0,
        cardinality=10,
    )
    scan_b = PhysicalPlan(
        PhysicalOperator.INDEX_SCAN, Expression.leaf("b"), local_cost=2.0, total_cost=2.0,
        cardinality=20,
    )
    return PhysicalPlan(
        PhysicalOperator.HASH_JOIN,
        Expression.of("a", "b"),
        children=(scan_a, scan_b),
        local_cost=5.0,
        total_cost=8.0,
        cardinality=15,
    )


class TestPhysicalOperator:
    def test_scan_classification(self):
        assert PhysicalOperator.SEQ_SCAN.is_scan
        assert not PhysicalOperator.HASH_JOIN.is_scan

    def test_join_classification(self):
        assert PhysicalOperator.HASH_JOIN.is_join
        assert PhysicalOperator.SORT_MERGE_JOIN.is_join
        assert not PhysicalOperator.SORT.is_join


class TestPhysicalPlan:
    def test_structure_accessors(self):
        plan = build_sample_plan()
        assert not plan.is_leaf
        assert plan.left.expression == Expression.leaf("a")
        assert plan.right.expression == Expression.leaf("b")
        assert plan.node_count == 3
        assert plan.depth == 2

    def test_leaf_order(self):
        plan = build_sample_plan()
        assert plan.leaf_order() == ["a", "b"]

    def test_operator_histogram(self):
        plan = build_sample_plan()
        counts = plan.operators_used()
        assert counts[PhysicalOperator.HASH_JOIN] == 1
        assert counts[PhysicalOperator.SEQ_SCAN] == 1

    def test_iter_nodes_preorder(self):
        plan = build_sample_plan()
        nodes = list(plan.iter_nodes())
        assert nodes[0] is plan
        assert len(nodes) == 3

    def test_signature_ignores_costs(self):
        plan_a = build_sample_plan()
        plan_b = PhysicalPlan(
            PhysicalOperator.HASH_JOIN,
            Expression.of("a", "b"),
            children=plan_a.children,
            local_cost=99.0,
            total_cost=999.0,
            cardinality=1,
        )
        assert plan_a.join_order_signature() == plan_b.join_order_signature()

    def test_signature_distinguishes_operators(self):
        plan_a = build_sample_plan()
        plan_b = PhysicalPlan(
            PhysicalOperator.SORT_MERGE_JOIN,
            Expression.of("a", "b"),
            children=plan_a.children,
        )
        assert plan_a.join_order_signature() != plan_b.join_order_signature()

    def test_pretty_mentions_operators(self):
        rendered = build_sample_plan().pretty()
        assert "pipelined-hash-join" in rendered
        assert "seq-scan" in rendered

    def test_details_lookup(self):
        plan = PhysicalPlan(
            PhysicalOperator.SEQ_SCAN,
            Expression.leaf("a"),
            details=(("note", "value"),),
        )
        assert plan.detail("note") == "value"
        assert plan.detail("missing", 42) == 42
