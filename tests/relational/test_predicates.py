"""Tests for filter and join predicates."""

import pytest

from repro.common.errors import QueryError
from repro.relational.expressions import ColumnRef, Expression
from repro.relational.predicates import ComparisonOp, FilterPredicate, JoinPredicate


class TestComparisonOp:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            (ComparisonOp.EQ, 1, 1, True),
            (ComparisonOp.EQ, 1, 2, False),
            (ComparisonOp.NE, 1, 2, True),
            (ComparisonOp.LT, 1, 2, True),
            (ComparisonOp.LE, 2, 2, True),
            (ComparisonOp.GT, 3, 2, True),
            (ComparisonOp.GE, 1, 2, False),
        ],
    )
    def test_evaluate(self, op, left, right, expected):
        assert op.evaluate(left, right) is expected

    def test_classification(self):
        assert ComparisonOp.EQ.is_equality
        assert ComparisonOp.LT.is_range
        assert not ComparisonOp.EQ.is_range
        assert not ComparisonOp.NE.is_equality


class TestFilterPredicate:
    def test_evaluate_row_value(self):
        predicate = FilterPredicate(ColumnRef("o", "date"), ComparisonOp.LT, 100)
        assert predicate.evaluate(50)
        assert not predicate.evaluate(150)

    def test_alias_property(self):
        predicate = FilterPredicate(ColumnRef("o", "date"), ComparisonOp.LT, 100)
        assert predicate.alias == "o"

    def test_selectivity_hint_validation(self):
        with pytest.raises(QueryError):
            FilterPredicate(ColumnRef("o", "date"), ComparisonOp.LT, 100, selectivity_hint=1.5)

    def test_str_contains_operator(self):
        predicate = FilterPredicate(ColumnRef("o", "d"), ComparisonOp.GE, 3)
        assert ">=" in str(predicate)


class TestJoinPredicate:
    def test_same_alias_rejected(self):
        with pytest.raises(QueryError):
            JoinPredicate(ColumnRef("a", "x"), ColumnRef("a", "y"))

    def test_aliases_and_involvement(self):
        predicate = JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "y"))
        assert predicate.aliases == frozenset({"a", "b"})
        assert predicate.involves("a")
        assert not predicate.involves("c")
        assert predicate.is_equijoin

    def test_connects_either_orientation(self):
        predicate = JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "y"))
        left = Expression.leaf("a")
        right = Expression.leaf("b")
        assert predicate.connects(left, right)
        assert predicate.connects(right, left)
        assert not predicate.connects(left, Expression.leaf("c"))

    def test_column_for_side(self):
        predicate = JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "y"))
        assert predicate.column_for(Expression.of("a", "c")) == ColumnRef("a", "x")
        assert predicate.column_for(Expression.leaf("b")) == ColumnRef("b", "y")
        with pytest.raises(QueryError):
            predicate.column_for(Expression.leaf("z"))

    def test_non_equi_join(self):
        predicate = JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "y"), ComparisonOp.LT)
        assert not predicate.is_equijoin
