"""Tests for filter and join predicates."""

import pytest

from repro.common.errors import QueryError
from repro.relational import scalar
from repro.relational.expressions import ColumnRef, Expression
from repro.relational.predicates import ComparisonOp, FilterPredicate, JoinPredicate


class TestComparisonOp:
    @pytest.mark.parametrize(
        "op,left,right,expected",
        [
            (ComparisonOp.EQ, 1, 1, True),
            (ComparisonOp.EQ, 1, 2, False),
            (ComparisonOp.NE, 1, 2, True),
            (ComparisonOp.LT, 1, 2, True),
            (ComparisonOp.LE, 2, 2, True),
            (ComparisonOp.GT, 3, 2, True),
            (ComparisonOp.GE, 1, 2, False),
        ],
    )
    def test_evaluate(self, op, left, right, expected):
        assert op.evaluate(left, right) is expected

    def test_classification(self):
        assert ComparisonOp.EQ.is_equality
        assert ComparisonOp.LT.is_range
        assert not ComparisonOp.EQ.is_range
        assert not ComparisonOp.NE.is_equality


class TestFilterPredicate:
    def test_evaluate_row_value(self):
        predicate = FilterPredicate.comparison(ColumnRef("o", "date"), ComparisonOp.LT, 100)
        keep = scalar.compile_predicate(predicate.expr, lambda ref: ref.column)
        assert keep({"date": 50})
        assert not keep({"date": 150})

    def test_alias_property(self):
        predicate = FilterPredicate.comparison(ColumnRef("o", "date"), ComparisonOp.LT, 100)
        assert predicate.alias == "o"

    def test_selectivity_hint_validation(self):
        with pytest.raises(QueryError):
            FilterPredicate.comparison(
                ColumnRef("o", "date"), ComparisonOp.LT, 100, selectivity_hint=1.5
            )

    def test_str_contains_operator(self):
        predicate = FilterPredicate.comparison(ColumnRef("o", "d"), ComparisonOp.GE, 3)
        assert ">=" in str(predicate)

    def test_multi_alias_expression_rejected(self):
        expr = scalar.Comparison(
            ComparisonOp.EQ,
            scalar.Column(ColumnRef("a", "x")),
            scalar.Column(ColumnRef("b", "y")),
        )
        with pytest.raises(QueryError):
            FilterPredicate(expr)

    def test_no_column_expression_rejected(self):
        expr = scalar.Comparison(ComparisonOp.EQ, scalar.Literal(1), scalar.Literal(1))
        with pytest.raises(QueryError):
            FilterPredicate(expr)

    def test_indexable_column_sargable_shapes(self):
        ref = ColumnRef("o", "qty")
        assert FilterPredicate.comparison(ref, ComparisonOp.LT, 10).indexable_column == ref
        between = FilterPredicate(
            scalar.Between(scalar.Column(ref), scalar.Literal(1), scalar.Literal(9))
        )
        assert between.indexable_column == ref
        arithmetic = FilterPredicate(
            scalar.Comparison(
                ComparisonOp.LT,
                scalar.Arithmetic(scalar.ArithOp.MUL, scalar.Column(ref), scalar.Literal(2)),
                scalar.Literal(10),
            )
        )
        assert arithmetic.indexable_column is None

    def test_disjunction_is_one_predicate(self):
        ref = ColumnRef("o", "region")
        expr = scalar.Or(
            (
                scalar.Comparison(ComparisonOp.EQ, scalar.Column(ref), scalar.Literal("EU")),
                scalar.Comparison(ComparisonOp.EQ, scalar.Column(ref), scalar.Literal("APAC")),
            )
        )
        predicate = FilterPredicate(expr)
        assert predicate.alias == "o"
        assert predicate.indexable_column is None
        assert "OR" in str(predicate)


class TestJoinPredicate:
    def test_same_alias_rejected(self):
        with pytest.raises(QueryError):
            JoinPredicate(ColumnRef("a", "x"), ColumnRef("a", "y"))

    def test_aliases_and_involvement(self):
        predicate = JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "y"))
        assert predicate.aliases == frozenset({"a", "b"})
        assert predicate.involves("a")
        assert not predicate.involves("c")
        assert predicate.is_equijoin

    def test_connects_either_orientation(self):
        predicate = JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "y"))
        left = Expression.leaf("a")
        right = Expression.leaf("b")
        assert predicate.connects(left, right)
        assert predicate.connects(right, left)
        assert not predicate.connects(left, Expression.leaf("c"))

    def test_column_for_side(self):
        predicate = JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "y"))
        assert predicate.column_for(Expression.of("a", "c")) == ColumnRef("a", "x")
        assert predicate.column_for(Expression.leaf("b")) == ColumnRef("b", "y")
        with pytest.raises(QueryError):
            predicate.column_for(Expression.leaf("z"))

    def test_non_equi_join(self):
        predicate = JoinPredicate(ColumnRef("a", "x"), ColumnRef("b", "y"), ComparisonOp.LT)
        assert not predicate.is_equijoin
