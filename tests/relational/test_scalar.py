"""Unit tests for the typed scalar-expression IR.

Covers SQL three-valued NULL semantics, the type checker, and backend
agreement: the row-closure compiler (:func:`scalar.compile_row`), the naive
tree-walk interpreter (:func:`scalar.interpret`) and the batched evaluator
(:func:`scalar.evaluate_batch`) must produce identical values for every
expression over every row.
"""

import pytest

from repro.common.errors import QueryError
from repro.relational import scalar
from repro.relational.expressions import ColumnRef
from repro.relational.scalar import (
    And,
    Arithmetic,
    ArithOp,
    Between,
    Column,
    Comparison,
    ComparisonOp,
    InList,
    IsNull,
    Like,
    Literal,
    Negate,
    Not,
    Or,
    Parameter,
    ScalarType,
)


def col(name):
    return Column(ColumnRef("t", name))


def lit(value):
    return Literal(value)


def cmp_(op, left, right):
    return Comparison(ComparisonOp(op), left, right)


def run_all_backends(expr, row, parameters=None):
    """Evaluate *expr* via all three backends and assert they agree."""

    def name_of(ref):
        return ref.column

    compiled = scalar.compile_row(expr, name_of, parameters)(row)
    walked = scalar.interpret(expr, row, name_of, parameters)

    def resolve(ref):
        if ref.column not in row:
            raise scalar.MissingColumnError(ref)
        return [row[ref.column]]

    batched = scalar.evaluate_batch(expr, resolve, [0], parameters)[0]
    assert compiled == walked == batched or (compiled is walked is batched is None)
    return compiled


class TestThreeValuedLogic:
    def test_comparison_with_null_is_null(self):
        assert run_all_backends(cmp_("<", col("a"), lit(10)), {"a": None}) is None
        assert run_all_backends(cmp_("=", lit(None), lit(1)), {}) is None

    def test_and_truth_table(self):
        true = cmp_("=", lit(1), lit(1))
        false = cmp_("=", lit(1), lit(2))
        null = cmp_("=", lit(None), lit(1))
        assert run_all_backends(And((true, false)), {}) is False
        assert run_all_backends(And((true, null)), {}) is None
        # NULL AND FALSE is FALSE, not NULL.
        assert run_all_backends(And((null, false)), {}) is False
        assert run_all_backends(And((true, true)), {}) is True

    def test_or_truth_table(self):
        true = cmp_("=", lit(1), lit(1))
        false = cmp_("=", lit(1), lit(2))
        null = cmp_("=", lit(None), lit(1))
        # NULL OR TRUE is TRUE, not NULL.
        assert run_all_backends(Or((null, true)), {}) is True
        assert run_all_backends(Or((false, null)), {}) is None
        assert run_all_backends(Or((false, false)), {}) is False

    def test_not_of_null_is_null(self):
        null = cmp_("=", lit(None), lit(1))
        assert run_all_backends(Not(null), {}) is None
        assert run_all_backends(Not(cmp_("=", lit(1), lit(1))), {}) is False

    def test_in_with_null_item_is_null_not_false(self):
        expr = InList(col("a"), (lit(1), lit(2), lit(None)))
        assert run_all_backends(expr, {"a": 1}) is True
        assert run_all_backends(expr, {"a": 9}) is None
        assert run_all_backends(expr, {"a": None}) is None

    def test_not_in_with_null_item(self):
        expr = InList(col("a"), (lit(1), lit(None)), negated=True)
        assert run_all_backends(expr, {"a": 1}) is False
        assert run_all_backends(expr, {"a": 9}) is None

    def test_in_without_nulls(self):
        expr = InList(col("a"), (lit(1), lit(2)))
        assert run_all_backends(expr, {"a": 3}) is False

    def test_between_null_operand_or_bound(self):
        assert run_all_backends(Between(col("a"), lit(1), lit(9)), {"a": None}) is None
        assert run_all_backends(Between(col("a"), lit(None), lit(9)), {"a": 5}) is None
        assert run_all_backends(Between(col("a"), lit(1), lit(9)), {"a": 5}) is True
        assert run_all_backends(Between(col("a"), lit(1), lit(9), negated=True), {"a": 5}) is False

    def test_between_decomposes_under_kleene_and(self):
        # x BETWEEN lo AND hi is x >= lo AND x <= hi: NULL AND FALSE is
        # FALSE, so a NULL bound does not force NULL when the other side
        # already fails — and NOT BETWEEN can then be TRUE.
        assert run_all_backends(Between(col("a"), lit(None), lit(5)), {"a": 10}) is False
        assert (
            run_all_backends(Between(col("a"), lit(None), lit(5), negated=True), {"a": 10})
            is True
        )
        assert run_all_backends(Between(col("a"), lit(5), lit(None)), {"a": 1}) is False
        assert (
            run_all_backends(Between(col("a"), lit(5), lit(None), negated=True), {"a": 1})
            is True
        )
        # Both sides undecided: NULL AND NULL is NULL.
        assert run_all_backends(Between(col("a"), lit(None), lit(None)), {"a": 1}) is None

    def test_filter_batch_not_between_null_bound(self):
        expr = Between(col("a"), lit(None), lit(5), negated=True)
        values = [10, 3, None, 7]
        selected = scalar.filter_batch(expr, lambda ref: values, range(4))
        assert selected == [0, 3]

    def test_is_null_never_null(self):
        assert run_all_backends(IsNull(col("a")), {"a": None}) is True
        assert run_all_backends(IsNull(col("a")), {"a": 1}) is False
        assert run_all_backends(IsNull(col("a"), negated=True), {"a": None}) is False

    def test_arithmetic_null_propagates(self):
        expr = Arithmetic(ArithOp.ADD, col("a"), lit(1))
        assert run_all_backends(expr, {"a": None}) is None
        assert run_all_backends(expr, {"a": 2}) == 3

    def test_division_by_zero_is_null(self):
        expr = Arithmetic(ArithOp.DIV, lit(1), col("a"))
        assert run_all_backends(expr, {"a": 0}) is None
        assert run_all_backends(expr, {"a": 2}) == 0.5

    def test_negate_null(self):
        assert run_all_backends(Negate(col("a")), {"a": None}) is None
        assert run_all_backends(Negate(col("a")), {"a": 3}) == -3


class TestLike:
    @pytest.mark.parametrize(
        "pattern,value,expected",
        [
            ("a%", "abc", True),
            ("a%", "bca", False),
            ("%c", "abc", True),
            ("a_c", "abc", True),
            ("a_c", "abxc", False),
            ("a.c", "abc", False),  # regex metachars are literal
            ("a.c", "a.c", True),
            ("%b%", "abc", True),
            ("", "", True),
        ],
    )
    def test_patterns(self, pattern, value, expected):
        assert run_all_backends(Like(col("s"), pattern), {"s": value}) is expected

    def test_null_operand_is_null(self):
        assert run_all_backends(Like(col("s"), "a%"), {"s": None}) is None

    def test_negated(self):
        assert run_all_backends(Like(col("s"), "a%", negated=True), {"s": "abc"}) is False


class TestPredicateCollapse:
    def test_null_means_filtered_out(self):
        expr = cmp_("<", col("a"), lit(10))
        keep = scalar.compile_predicate(expr, lambda ref: ref.column)
        assert keep({"a": 5})
        assert not keep({"a": 15})
        assert not keep({"a": None})  # NULL comparison keeps nothing

    def test_filter_batch_selects_only_true(self):
        expr = cmp_("<", col("a"), lit(10))
        values = [5, None, 15, 3]
        selected = scalar.filter_batch(expr, lambda ref: values, range(4))
        assert selected == [0, 3]


class TestParameters:
    def test_parameter_resolution(self):
        expr = cmp_("<", col("a"), Parameter(1))
        assert run_all_backends(expr, {"a": 5}, parameters=(10,)) is True
        assert run_all_backends(expr, {"a": 15}, parameters=(10,)) is False

    def test_missing_parameter_raises(self):
        expr = cmp_("<", col("a"), Parameter(2))
        with pytest.raises(QueryError, match=r"\$2"):
            scalar.compile_row(expr, lambda ref: ref.column, (1,))

    def test_zero_index_rejected(self):
        with pytest.raises(QueryError):
            Parameter(0)


class TestMissingColumns:
    def test_row_backend_raises(self):
        expr = cmp_("=", col("nope"), lit(1))
        fn = scalar.compile_row(expr, lambda ref: ref.column)
        with pytest.raises(scalar.MissingColumnError):
            fn({"a": 1})

    def test_batch_backend_raises_on_missing_sentinel(self):
        expr = cmp_("=", col("a"), lit(1))
        with pytest.raises(scalar.MissingColumnError):
            scalar.evaluate_batch(expr, lambda ref: [scalar.MISSING], [0])


class TestHelpers:
    def test_conjuncts_flatten_nested_ands(self):
        a = cmp_("=", col("a"), lit(1))
        b = cmp_("=", col("b"), lit(2))
        c = cmp_("=", col("c"), lit(3))
        expr = And((And((a, b)), c))
        assert scalar.conjuncts(expr) == [a, b, c]
        assert scalar.conjuncts(a) == [a]

    def test_conjoin_round_trips(self):
        a = cmp_("=", col("a"), lit(1))
        b = cmp_("=", col("b"), lit(2))
        assert scalar.conjoin([a]) is a
        assert scalar.conjuncts(scalar.conjoin([a, b])) == [a, b]

    def test_columns_of_deduplicates(self):
        expr = And((cmp_("<", col("a"), lit(1)), cmp_(">", col("a"), col("b"))))
        assert scalar.columns_of(expr) == [ColumnRef("t", "a"), ColumnRef("t", "b")]

    def test_comparison_op_evaluate_delegates_to_comparator(self):
        # One source of truth: evaluate and comparator are the same callable
        # semantics for every operator.
        for op in ComparisonOp:
            assert op.evaluate(1, 2) == op.comparator(1, 2)
            assert op.evaluate(2, 2) == op.comparator(2, 2)


class TestRendering:
    def test_precedence_parentheses(self):
        disjunction = Or(
            (cmp_("=", col("a"), lit(1)), cmp_("=", col("b"), lit(2)))
        )
        conjunction = And((disjunction, cmp_("<", col("c"), lit(3))))
        assert str(conjunction) == "(t.a = 1 OR t.b = 2) AND t.c < 3"

    def test_arithmetic_precedence(self):
        expr = Arithmetic(
            ArithOp.MUL,
            Arithmetic(ArithOp.ADD, col("a"), lit(1)),
            col("b"),
        )
        assert str(expr) == "(t.a + 1) * t.b"
        flat = Arithmetic(ArithOp.ADD, Arithmetic(ArithOp.MUL, col("a"), lit(2)), lit(1))
        assert str(flat) == "t.a * 2 + 1"

    def test_subtraction_right_association_parenthesized(self):
        expr = Arithmetic(ArithOp.SUB, col("a"), Arithmetic(ArithOp.SUB, col("b"), lit(1)))
        assert str(expr) == "t.a - (t.b - 1)"

    def test_string_literal_quoted(self):
        assert str(cmp_("=", col("s"), lit("EU"))) == "t.s = 'EU'"
        assert str(lit(None)) == "NULL"


class TestTypecheck:
    TYPES = {
        "i": ScalarType.INTEGER,
        "f": ScalarType.FLOAT,
        "s": ScalarType.STRING,
    }

    def check(self, expr, parameter_types=None):
        return scalar.typecheck(expr, lambda ref: self.TYPES[ref.column], parameter_types)

    def test_arithmetic_types(self):
        assert self.check(Arithmetic(ArithOp.ADD, col("i"), lit(1))) is ScalarType.INTEGER
        assert self.check(Arithmetic(ArithOp.ADD, col("i"), col("f"))) is ScalarType.FLOAT
        assert self.check(Arithmetic(ArithOp.DIV, col("i"), lit(2))) is ScalarType.FLOAT

    def test_arithmetic_on_string_rejected(self):
        with pytest.raises(QueryError, match="numeric"):
            self.check(Arithmetic(ArithOp.ADD, col("s"), lit(1)))

    def test_string_numeric_comparison_rejected(self):
        with pytest.raises(QueryError, match="cannot compare"):
            self.check(cmp_("=", col("s"), lit(1)))

    def test_null_compares_with_anything(self):
        assert self.check(cmp_("=", col("s"), lit(None))) is ScalarType.BOOLEAN
        assert self.check(cmp_("=", col("i"), lit(None))) is ScalarType.BOOLEAN

    def test_like_needs_string(self):
        assert self.check(Like(col("s"), "a%")) is ScalarType.BOOLEAN
        with pytest.raises(QueryError, match="LIKE"):
            self.check(Like(col("i"), "a%"))

    def test_and_needs_boolean_operands(self):
        with pytest.raises(QueryError, match="AND"):
            self.check(And((col("i"), cmp_("=", col("i"), lit(1)))))

    def test_parameter_inherits_partner_type(self):
        collected = {}
        self.check(cmp_("<", col("i"), Parameter(1)), collected)
        assert collected == {1: ScalarType.INTEGER}

    def test_parameter_type_conflict_rejected(self):
        collected = {}
        conj = And(
            (
                cmp_("<", col("i"), Parameter(1)),
                cmp_("=", col("s"), Parameter(1)),
            )
        )
        # The conflict surfaces at the second comparison: by then $1 is typed
        # INTEGER and comparing it to a string column is incomparable.
        with pytest.raises(QueryError, match="cannot compare"):
            self.check(conj, collected)

    def test_numeric_parameter_unifies_to_float(self):
        collected = {}
        conj = And(
            (
                cmp_("<", col("i"), Parameter(1)),
                cmp_("<", col("f"), Parameter(1)),
            )
        )
        self.check(conj, collected)
        assert collected == {1: ScalarType.FLOAT}

    def test_parameters_in_arithmetic_typed_float(self):
        # Two untyped slots meeting in arithmetic still come out concrete:
        # arithmetic is numeric-only, so both type as FLOAT and the admission
        # check can reject strings before the engine's comparison loop.
        collected = {}
        self.check(cmp_("<", col("i"), Arithmetic(ArithOp.ADD, Parameter(1), Parameter(2))), collected)
        assert collected == {1: ScalarType.FLOAT, 2: ScalarType.FLOAT}

    def test_boolean_literal_rejected(self):
        with pytest.raises(QueryError):
            scalar.type_of_value(True)
