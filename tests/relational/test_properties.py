"""Tests for physical properties (interesting orders)."""

import pytest

from repro.common.errors import QueryError
from repro.relational.expressions import ColumnRef
from repro.relational.properties import ANY_PROPERTY, PhysicalProperty, PropertyKind


class TestPhysicalProperty:
    def test_any_singleton(self):
        assert PhysicalProperty.any() is ANY_PROPERTY
        assert ANY_PROPERTY.is_any

    def test_any_must_not_carry_column(self):
        with pytest.raises(QueryError):
            PhysicalProperty(PropertyKind.ANY, ColumnRef("a", "x"))

    def test_non_any_requires_column(self):
        with pytest.raises(QueryError):
            PhysicalProperty(PropertyKind.SORTED, None)

    def test_sorted_satisfies_itself_and_any(self):
        column = ColumnRef("o", "o_custkey")
        sorted_prop = PhysicalProperty.sorted_on(column)
        assert sorted_prop.satisfies(ANY_PROPERTY)
        assert sorted_prop.satisfies(PhysicalProperty.sorted_on(column))
        assert not sorted_prop.satisfies(PhysicalProperty.sorted_on(ColumnRef("o", "other")))

    def test_any_does_not_satisfy_sorted(self):
        assert not ANY_PROPERTY.satisfies(PhysicalProperty.sorted_on(ColumnRef("o", "o_custkey")))

    def test_indexed_distinct_from_sorted(self):
        column = ColumnRef("l", "l_orderkey")
        indexed = PhysicalProperty.indexed_on(column)
        sorted_prop = PhysicalProperty.sorted_on(column)
        assert not indexed.satisfies(sorted_prop)
        assert not sorted_prop.satisfies(indexed)

    def test_str_rendering(self):
        assert str(ANY_PROPERTY) == "-"
        assert "sorted" in str(PhysicalProperty.sorted_on(ColumnRef("a", "x")))

    def test_properties_are_hashable_keys(self):
        column = ColumnRef("a", "x")
        keys = {
            ANY_PROPERTY: 1,
            PhysicalProperty.sorted_on(column): 2,
            PhysicalProperty.indexed_on(column): 3,
        }
        assert len(keys) == 3
