"""Tests for the query model and builder."""

import pytest

from repro.common.errors import QueryError
from repro.relational.expressions import ColumnRef, Expression
from repro.relational.predicates import ComparisonOp
from repro.relational.query import (
    AggregateFunction,
    Query,
    QueryBuilder,
    RelationRef,
    WindowKind,
    WindowSpec,
)


def build_triangle() -> Query:
    """a-b-c chain query used throughout these tests."""
    return (
        QueryBuilder("tri")
        .scan("ta", alias="a")
        .scan("tb", alias="b")
        .scan("tc", alias="c")
        .join_on("a.x", "b.x")
        .join_on("b.y", "c.y")
        .filter("a.z", ComparisonOp.GT, 5)
        .select("a.x", "c.y")
        .build()
    )


class TestQueryConstruction:
    def test_requires_relations(self):
        with pytest.raises(QueryError):
            Query("empty", [])

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(QueryError):
            Query("dup", [RelationRef("a", "t"), RelationRef("a", "t")])

    def test_join_predicate_alias_validation(self):
        with pytest.raises(QueryError):
            (
                QueryBuilder("bad")
                .scan("t", alias="a")
                .scan("t2", alias="b")
                .join_on("a.x", "zz.y")
                .build()
            )

    def test_filter_alias_validation(self):
        with pytest.raises(QueryError):
            QueryBuilder("bad").scan("t", alias="a").filter("zz.x", ComparisonOp.EQ, 1).build()

    def test_projection_alias_validation(self):
        with pytest.raises(QueryError):
            QueryBuilder("bad").scan("t", alias="a").select("zz.x").build()


class TestQueryAccessors:
    def test_root_expression(self):
        query = build_triangle()
        assert query.root_expression == Expression.of("a", "b", "c")

    def test_filters_for(self):
        query = build_triangle()
        assert len(query.filters_for("a")) == 1
        assert query.filters_for("b") == []

    def test_relation_lookup(self):
        query = build_triangle()
        assert query.relation("a").table == "ta"
        with pytest.raises(QueryError):
            query.relation("zz")

    def test_columns_of_alias_unique(self):
        query = build_triangle()
        columns = query.columns_of_alias("a")
        assert ColumnRef("a", "x") in columns
        assert ColumnRef("a", "z") in columns
        assert len(columns) == len(set(columns))

    def test_has_aggregation(self):
        query = build_triangle()
        assert not query.has_aggregation
        agg = (
            QueryBuilder("agg")
            .scan("t", alias="a")
            .aggregate(AggregateFunction.COUNT)
            .build()
        )
        assert agg.has_aggregation


class TestJoinGraph:
    def test_adjacency(self):
        query = build_triangle()
        graph = query.join_graph()
        assert graph["a"] == {"b"}
        assert graph["b"] == {"a", "c"}

    def test_connectivity(self):
        query = build_triangle()
        assert query.is_connected({"a", "b"})
        assert query.is_connected({"a", "b", "c"})
        assert not query.is_connected({"a", "c"})
        assert query.is_connected({"a"})
        assert not query.is_connected(set())

    def test_predicates_between(self):
        query = build_triangle()
        left = Expression.of("a", "b")
        right = Expression.leaf("c")
        predicates = query.predicates_between(left, right)
        assert len(predicates) == 1
        assert predicates[0].aliases == frozenset({"b", "c"})

    def test_predicates_within(self):
        query = build_triangle()
        assert len(query.predicates_within(Expression.of("a", "b", "c"))) == 2
        assert len(query.predicates_within(Expression.of("a", "c"))) == 0


class TestWindows:
    def test_window_spec_validation(self):
        with pytest.raises(QueryError):
            WindowSpec(WindowKind.TIME, 0)

    def test_windowed_relation_ref(self):
        spec = WindowSpec(WindowKind.TUPLES, 4, (ColumnRef("r", "carid"),))
        query = QueryBuilder("w").scan("stream", alias="r", window=spec).build()
        assert query.relation("r").is_windowed
        assert query.relation("r").window.size == 4

    def test_window_str(self):
        spec = WindowSpec(WindowKind.TIME, 300)
        assert "300" in str(spec)


class TestValidationAgainstSchema:
    def test_unknown_column_detected(self, two_table_schema):
        query = (
            QueryBuilder("bad")
            .scan("emp", alias="e")
            .filter("e.not_a_column", ComparisonOp.EQ, 1)
            .build()
        )
        with pytest.raises(QueryError):
            query.validate_against(two_table_schema)

    def test_valid_query_passes(self, two_table_schema, two_table_query):
        two_table_query.validate_against(two_table_schema)
