"""Property-based tests for multiset relations: order-insensitive convergence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.relation import MultisetRelation

operations = st.lists(
    st.tuples(st.sampled_from(["+", "-"]), st.integers(min_value=0, max_value=5)),
    max_size=60,
)


@given(operations)
@settings(max_examples=150, deadline=None)
def test_counts_equal_insertions_minus_deletions(ops):
    relation = MultisetRelation()
    for action, value in ops:
        if action == "+":
            relation.insert(value)
        else:
            relation.delete(value)
    for value in range(6):
        expected = sum(1 for a, v in ops if v == value and a == "+") - sum(
            1 for a, v in ops if v == value and a == "-"
        )
        assert relation.count(value) == expected
        assert (value in relation) == (expected > 0)


@given(operations, st.randoms(use_true_random=False))
@settings(max_examples=100, deadline=None)
def test_final_state_independent_of_order(ops, rng):
    """Out-of-order delivery (the pipelined-engine scenario) converges to the
    same visible relation as in-order delivery."""
    in_order = MultisetRelation()
    for action, value in ops:
        (in_order.insert if action == "+" else in_order.delete)(value)
    shuffled_ops = list(ops)
    rng.shuffle(shuffled_ops)
    out_of_order = MultisetRelation()
    for action, value in shuffled_ops:
        (out_of_order.insert if action == "+" else out_of_order.delete)(value)
    assert in_order.snapshot() == out_of_order.snapshot()
