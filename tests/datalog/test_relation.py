"""Tests for multiset relations with counts."""

from repro.datalog.deltas import Delta
from repro.datalog.relation import DeltaRelation, MultisetRelation, Transition


class TestMultisetRelation:
    def test_insert_and_membership(self):
        relation = MultisetRelation("r")
        assert relation.insert("x") is Transition.APPEARED
        assert "x" in relation
        assert relation.count("x") == 1
        assert len(relation) == 1

    def test_duplicate_insert_no_transition(self):
        relation = MultisetRelation("r")
        relation.insert("x")
        assert relation.insert("x") is Transition.UNCHANGED
        assert relation.count("x") == 2
        assert len(relation) == 1  # still one visible tuple value

    def test_delete_to_zero_disappears(self):
        relation = MultisetRelation("r")
        relation.insert("x")
        assert relation.delete("x") is Transition.DISAPPEARED
        assert "x" not in relation

    def test_out_of_order_delete_goes_negative(self):
        """The paper's contract: deletions seen before insertions give
        temporarily negative counts; the later insertion cancels them."""
        relation = MultisetRelation("r")
        assert relation.delete("x") is Transition.UNCHANGED
        assert relation.count("x") == -1
        assert relation.has_negative_counts
        assert "x" not in relation
        assert relation.insert("x") is Transition.UNCHANGED
        assert relation.count("x") == 0
        assert not relation.has_negative_counts

    def test_apply_update_delta(self):
        relation = MultisetRelation("r")
        relation.insert("old")
        transitions = relation.apply(Delta.update("old", "new"))
        assert Transition.DISAPPEARED in transitions
        assert Transition.APPEARED in transitions
        assert "new" in relation and "old" not in relation

    def test_iteration_only_visible(self):
        relation = MultisetRelation("r")
        relation.insert("a")
        relation.delete("b")
        assert sorted(relation) == ["a"]

    def test_snapshot_and_clear(self):
        relation = MultisetRelation("r")
        relation.insert("a")
        relation.insert("a")
        assert relation.snapshot() == {"a": 2}
        relation.clear()
        assert len(relation) == 0


class TestDeltaRelation:
    def test_listeners_receive_visibility_changes_only(self):
        relation = DeltaRelation("r")
        events = []
        relation.subscribe(events.append)
        relation.apply(Delta.insert("x"))
        relation.apply(Delta.insert("x"))  # duplicate: no new visibility event
        relation.apply(Delta.delete("x"))  # still one copy left: no event
        relation.apply(Delta.delete("x"))  # now it disappears
        assert len(events) == 2
        assert events[0].is_insert and events[1].is_delete

    def test_update_delta_emits_delete_and_insert(self):
        relation = DeltaRelation("r")
        events = []
        relation.subscribe(events.append)
        relation.apply(Delta.insert("a"))
        relation.apply(Delta.update("a", "b"))
        kinds = [(event.is_insert, event.value) for event in events]
        assert (True, "a") in kinds
        assert (True, "b") in kinds
        assert any(event.is_delete and event.value == "a" for event in events)
