"""Tests for the reference counter."""

import pytest

from repro.common.errors import ReproError
from repro.datalog.refcount import ReferenceCounter, RefTransition


class TestReferenceCounter:
    def test_increment_from_zero_becomes_live(self):
        counter = ReferenceCounter()
        assert counter.increment("k") is RefTransition.BECAME_LIVE
        assert counter.is_live("k")
        assert counter.count("k") == 1

    def test_further_increments_unchanged(self):
        counter = ReferenceCounter()
        counter.increment("k")
        assert counter.increment("k") is RefTransition.UNCHANGED
        assert counter.count("k") == 2

    def test_decrement_to_zero_becomes_dead(self):
        counter = ReferenceCounter()
        counter.increment("k")
        counter.increment("k")
        assert counter.decrement("k") is RefTransition.UNCHANGED
        assert counter.decrement("k") is RefTransition.BECAME_DEAD
        assert not counter.is_live("k")

    def test_decrement_below_zero_raises(self):
        counter = ReferenceCounter()
        with pytest.raises(ReproError):
            counter.decrement("k")

    def test_negative_amounts_rejected(self):
        counter = ReferenceCounter()
        with pytest.raises(ReproError):
            counter.increment("k", -1)
        with pytest.raises(ReproError):
            counter.decrement("k", -1)

    def test_bulk_amounts(self):
        counter = ReferenceCounter()
        assert counter.increment("k", 3) is RefTransition.BECAME_LIVE
        assert counter.decrement("k", 3) is RefTransition.BECAME_DEAD

    def test_live_keys_listing(self):
        counter = ReferenceCounter()
        counter.increment("a")
        counter.increment("b")
        counter.decrement("b")
        assert list(counter.live_keys()) == ["a"]

    def test_snapshot_and_clear(self):
        counter = ReferenceCounter()
        counter.increment("a", 2)
        assert counter.snapshot() == {"a": 2}
        counter.clear()
        assert counter.count("a") == 0
