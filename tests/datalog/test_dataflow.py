"""Tests for the incremental rule dataflow (joins, aggregates, recursion)."""

import pytest

from repro.common.errors import ReproError
from repro.datalog.dataflow import (
    Dataflow,
    FilterRule,
    JoinRule,
    MapRule,
    MinAggregateRule,
)


def build_edge_path_dataflow() -> Dataflow:
    """Classic recursive program: path(x,y) :- edge(x,y) | edge(x,z), path(z,y)."""
    flow = Dataflow()
    flow.add_rule(MapRule("edge", "path", lambda row: [row]))
    flow.add_rule(
        JoinRule(
            "edge",
            "path",
            "path",
            left_key=lambda edge: edge[1],
            right_key=lambda path: path[0],
            combine=lambda edge, path: (edge[0], path[1]),
        )
    )
    return flow


class TestMapAndFilterRules:
    def test_map_transforms_tuples(self):
        flow = Dataflow()
        flow.add_rule(MapRule("numbers", "doubled", lambda row: [(row[0] * 2,)]))
        flow.insert("numbers", (3,))
        flow.run_to_fixpoint()
        assert flow.rows("doubled") == [(6,)]

    def test_map_propagates_deletions(self):
        flow = Dataflow()
        flow.add_rule(MapRule("numbers", "doubled", lambda row: [(row[0] * 2,)]))
        flow.insert("numbers", (3,))
        flow.run_to_fixpoint()
        flow.delete("numbers", (3,))
        flow.run_to_fixpoint()
        assert flow.rows("doubled") == []

    def test_filter_rule(self):
        flow = Dataflow()
        flow.add_rule(FilterRule("numbers", "big", lambda row: row[0] > 10))
        flow.insert("numbers", (5,))
        flow.insert("numbers", (15,))
        flow.run_to_fixpoint()
        assert flow.rows("big") == [(15,)]


class TestJoinRule:
    def build(self):
        flow = Dataflow()
        flow.add_rule(
            JoinRule(
                "r",
                "s",
                "rs",
                left_key=lambda row: row[0],
                right_key=lambda row: row[0],
                combine=lambda left, right: (left[0], left[1], right[1]),
            )
        )
        return flow

    def test_join_produces_matches(self):
        flow = self.build()
        flow.insert("r", (1, "a"))
        flow.insert("s", (1, "x"))
        flow.insert("s", (2, "y"))
        flow.run_to_fixpoint()
        assert flow.rows("rs") == [(1, "a", "x")]

    def test_incremental_insert_into_either_side(self):
        flow = self.build()
        flow.insert("r", (1, "a"))
        flow.run_to_fixpoint()
        flow.insert("s", (1, "x"))
        flow.run_to_fixpoint()
        assert flow.rows("rs") == [(1, "a", "x")]

    def test_deletion_retracts_join_results(self):
        flow = self.build()
        flow.insert("r", (1, "a"))
        flow.insert("s", (1, "x"))
        flow.run_to_fixpoint()
        flow.delete("r", (1, "a"))
        flow.run_to_fixpoint()
        assert flow.rows("rs") == []

    def test_duplicate_matches_counted(self):
        flow = self.build()
        flow.insert("r", (1, "a"))
        flow.insert("s", (1, "x"))
        flow.insert("s", (1, "x"))
        flow.run_to_fixpoint()
        # Two derivations of the same output tuple; deleting one s copy keeps it.
        flow.delete("s", (1, "x"))
        flow.run_to_fixpoint()
        assert flow.rows("rs") == [(1, "a", "x")]

    def test_self_join_requires_distinct_names(self):
        with pytest.raises(ReproError):
            JoinRule("r", "r", "out", left_key=lambda r: r, right_key=lambda r: r)


class TestRecursion:
    def test_transitive_closure(self):
        flow = build_edge_path_dataflow()
        for edge in [(1, 2), (2, 3), (3, 4)]:
            flow.insert("edge", edge)
        flow.run_to_fixpoint()
        paths = set(flow.rows("path"))
        assert (1, 4) in paths
        assert (1, 3) in paths
        assert len(paths) == 6

    def test_incremental_edge_insertion_extends_paths(self):
        flow = build_edge_path_dataflow()
        for edge in [(1, 2), (3, 4)]:
            flow.insert("edge", edge)
        flow.run_to_fixpoint()
        assert (1, 4) not in set(flow.rows("path"))
        flow.insert("edge", (2, 3))
        flow.run_to_fixpoint()
        assert (1, 4) in set(flow.rows("path"))

    def test_fixpoint_step_limit(self):
        flow = Dataflow()
        # A rule that regenerates its own input forever.
        flow.add_rule(MapRule("a", "a", lambda row: [(row[0] + 1,)]))
        flow.insert("a", (0,))
        with pytest.raises(ReproError):
            flow.run_to_fixpoint(max_steps=100)


class TestMinAggregateRule:
    def build(self):
        flow = Dataflow()
        rule = MinAggregateRule(
            "costs", "best", group_key=lambda row: row[0], value_of=lambda row: row[1]
        )
        flow.add_rule(rule)
        return flow, rule

    def test_minimum_maintained(self):
        flow, rule = self.build()
        flow.insert("costs", ("q", 5.0))
        flow.insert("costs", ("q", 3.0))
        flow.run_to_fixpoint()
        assert flow.rows("best") == [("q", 3.0)]
        assert rule.minimum("q") == 3.0

    def test_minimum_recovers_after_delete(self):
        flow, rule = self.build()
        flow.insert("costs", ("q", 5.0))
        flow.insert("costs", ("q", 3.0))
        flow.run_to_fixpoint()
        flow.delete("costs", ("q", 3.0))
        flow.run_to_fixpoint()
        assert flow.rows("best") == [("q", 5.0)]

    def test_groups_independent(self):
        flow, _ = self.build()
        flow.insert("costs", ("q1", 5.0))
        flow.insert("costs", ("q2", 1.0))
        flow.run_to_fixpoint()
        assert set(flow.rows("best")) == {("q1", 5.0), ("q2", 1.0)}
