"""Property-based tests: the incremental min/max aggregates always agree with
recomputation from scratch, regardless of the operation sequence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.aggregates import GroupedMaxAggregate, GroupedMinAggregate


# A scenario is a list of (group, value, payload) insertions; deletions are
# derived from prefixes so they always target present entries.
entries = st.lists(
    st.tuples(
        st.sampled_from(["g1", "g2", "g3"]),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        st.integers(min_value=0, max_value=20),
    ),
    min_size=1,
    max_size=40,
)


@given(entries, st.data())
@settings(max_examples=120, deadline=None)
def test_min_aggregate_matches_recomputation(scenario, data):
    aggregate = GroupedMinAggregate()
    live = []
    for group, value, payload in scenario:
        aggregate.insert(group, value, payload)
        live.append((group, value, payload))
        # Occasionally delete a random live entry.
        if len(live) > 1 and data.draw(st.booleans()):
            index = data.draw(st.integers(min_value=0, max_value=len(live) - 1))
            victim = live.pop(index)
            aggregate.delete(*victim)
    for group in {"g1", "g2", "g3"}:
        expected = [value for g, value, _ in live if g == group]
        if expected:
            assert aggregate.value(group) == min(expected)
        else:
            assert aggregate.value(group) is None


@given(entries)
@settings(max_examples=80, deadline=None)
def test_max_aggregate_matches_recomputation(scenario):
    aggregate = GroupedMaxAggregate()
    for group, value, payload in scenario:
        aggregate.insert(group, value, payload)
    for group in {g for g, _, _ in scenario}:
        expected = max(value for g, value, _ in scenario if g == group)
        assert aggregate.value(group) == expected


@given(entries)
@settings(max_examples=80, deadline=None)
def test_update_equals_delete_plus_insert(scenario):
    """Applying update() gives the same extreme as delete()+insert()."""
    via_update = GroupedMinAggregate()
    via_delete_insert = GroupedMinAggregate()
    for group, value, payload in scenario:
        via_update.insert(group, value, payload)
        via_delete_insert.insert(group, value, payload)
    for group, value, payload in scenario:
        new_value = value + 1.0
        via_update.update(group, value, new_value, payload)
        via_delete_insert.delete(group, value, payload)
        via_delete_insert.insert(group, new_value, payload)
        assert via_update.value(group) == via_delete_insert.value(group)
