"""Tests for delta tuples."""

import pytest

from repro.common.errors import ReproError
from repro.datalog.deltas import Delta, DeltaAction


class TestConstruction:
    def test_insert_delete(self):
        insert = Delta.insert(("a", 1))
        delete = Delta.delete(("a", 1))
        assert insert.is_insert and not insert.is_delete
        assert delete.is_delete and not delete.is_insert

    def test_update_requires_old_value(self):
        with pytest.raises(ReproError):
            Delta(DeltaAction.UPDATE, "new")

    def test_non_update_must_not_carry_old_value(self):
        with pytest.raises(ReproError):
            Delta(DeltaAction.INSERT, "new", old_value="old")

    def test_update_fields(self):
        delta = Delta.update("old", "new")
        assert delta.is_update
        assert delta.old_value == "old"
        assert delta.value == "new"


class TestExpand:
    def test_insert_expands_to_itself(self):
        assert list(Delta.insert(1).expand()) == [(DeltaAction.INSERT, 1)]

    def test_delete_expands_to_itself(self):
        assert list(Delta.delete(1).expand()) == [(DeltaAction.DELETE, 1)]

    def test_update_expands_to_delete_then_insert(self):
        expanded = list(Delta.update(1, 2).expand())
        assert expanded == [(DeltaAction.DELETE, 1), (DeltaAction.INSERT, 2)]

    def test_str_representation(self):
        assert "+" in str(Delta.insert(1))
        assert "->" in str(Delta.update(1, 2))
