"""Tests for grouped min/max aggregates with next-best recovery."""

import pytest

from repro.common.errors import ReproError
from repro.datalog.aggregates import GroupedMaxAggregate, GroupedMinAggregate


class TestGroupedMinAggregate:
    def test_first_insert_emits_insert_delta(self):
        aggregate = GroupedMinAggregate()
        delta = aggregate.insert("g", 5.0, "p1")
        assert delta is not None and delta.is_insert
        assert aggregate.value("g") == 5.0

    def test_cheaper_insert_updates_minimum(self):
        aggregate = GroupedMinAggregate()
        aggregate.insert("g", 5.0, "p1")
        delta = aggregate.insert("g", 3.0, "p2")
        assert delta is not None and delta.is_update
        assert aggregate.value("g") == 3.0
        assert aggregate.current("g").payload == "p2"

    def test_more_expensive_insert_is_silent(self):
        aggregate = GroupedMinAggregate()
        aggregate.insert("g", 3.0, "p1")
        assert aggregate.insert("g", 9.0, "p2") is None
        assert aggregate.value("g") == 3.0

    def test_delete_minimum_recovers_next_best(self):
        """The core property the incremental optimizer relies on (§4.1)."""
        aggregate = GroupedMinAggregate()
        aggregate.insert("g", 5.0, "p1")
        aggregate.insert("g", 3.0, "p2")
        aggregate.insert("g", 7.0, "p3")
        delta = aggregate.delete("g", 3.0, "p2")
        assert delta is not None and delta.is_update
        assert aggregate.value("g") == 5.0
        assert aggregate.current("g").payload == "p1"

    def test_delete_non_minimum_is_silent(self):
        aggregate = GroupedMinAggregate()
        aggregate.insert("g", 3.0, "p1")
        aggregate.insert("g", 7.0, "p2")
        assert aggregate.delete("g", 7.0, "p2") is None

    def test_delete_last_entry_emits_delete(self):
        aggregate = GroupedMinAggregate()
        aggregate.insert("g", 3.0, "p1")
        delta = aggregate.delete("g", 3.0, "p1")
        assert delta is not None and delta.is_delete
        assert aggregate.value("g") is None

    def test_delete_absent_entry_raises(self):
        aggregate = GroupedMinAggregate()
        with pytest.raises(ReproError):
            aggregate.delete("g", 1.0, "p")

    def test_update_raising_minimum_promotes_next_best(self):
        aggregate = GroupedMinAggregate()
        aggregate.insert("g", 3.0, "p1")
        aggregate.insert("g", 5.0, "p2")
        delta = aggregate.update("g", 3.0, 10.0, "p1")
        assert delta is not None and delta.is_update
        assert aggregate.value("g") == 5.0

    def test_update_lowering_other_entry_takes_over(self):
        aggregate = GroupedMinAggregate()
        aggregate.insert("g", 3.0, "p1")
        aggregate.insert("g", 5.0, "p2")
        delta = aggregate.update("g", 5.0, 1.0, "p2")
        assert delta is not None
        assert aggregate.value("g") == 1.0

    def test_update_without_extreme_change_is_silent(self):
        aggregate = GroupedMinAggregate()
        aggregate.insert("g", 3.0, "p1")
        aggregate.insert("g", 5.0, "p2")
        assert aggregate.update("g", 5.0, 4.0, "p2") is None

    def test_groups_are_independent(self):
        aggregate = GroupedMinAggregate()
        aggregate.insert("g1", 3.0, "a")
        aggregate.insert("g2", 1.0, "b")
        assert aggregate.value("g1") == 3.0
        assert aggregate.value("g2") == 1.0
        assert len(aggregate) == 2

    def test_duplicate_entries_counted(self):
        aggregate = GroupedMinAggregate()
        aggregate.insert("g", 3.0, "p")
        aggregate.insert("g", 3.0, "p")
        aggregate.delete("g", 3.0, "p")
        assert aggregate.value("g") == 3.0
        assert aggregate.group_size("g") == 1

    def test_entries_listing(self):
        aggregate = GroupedMinAggregate()
        aggregate.insert("g", 3.0, "p1")
        aggregate.insert("g", 5.0, "p2")
        assert sorted(aggregate.entries("g")) == [(3.0, "p1"), (5.0, "p2")]
        assert aggregate.entries("unknown") == []


class TestGroupedMaxAggregate:
    def test_tracks_maximum(self):
        aggregate = GroupedMaxAggregate()
        aggregate.insert("g", 3.0, "p1")
        aggregate.insert("g", 9.0, "p2")
        assert aggregate.value("g") == 9.0

    def test_delete_maximum_recovers_next_best(self):
        aggregate = GroupedMaxAggregate()
        aggregate.insert("g", 3.0, "p1")
        aggregate.insert("g", 9.0, "p2")
        delta = aggregate.delete("g", 9.0, "p2")
        assert delta is not None and delta.is_update
        assert aggregate.value("g") == 3.0

    def test_infinity_values_supported(self):
        aggregate = GroupedMaxAggregate()
        aggregate.insert("g", float("inf"), "p1")
        aggregate.insert("g", 5.0, "p2")
        assert aggregate.value("g") == float("inf")
        aggregate.delete("g", float("inf"), "p1")
        assert aggregate.value("g") == 5.0
