"""Tests for the statistics overlay (runtime overrides)."""

import pytest

from repro.common.errors import CatalogError
from repro.cost.overrides import ChangeKind, StatisticsDelta, StatisticsOverlay
from repro.relational.expressions import Expression


class TestSelectivityFactors:
    def test_default_factor_is_one(self):
        overlay = StatisticsOverlay()
        assert overlay.selectivity_factor(Expression.of("a", "b")) == 1.0

    def test_factor_applies_to_containing_expressions(self):
        overlay = StatisticsOverlay()
        overlay.set_selectivity_factor(Expression.of("a", "b"), 4.0)
        assert overlay.selectivity_factor(Expression.of("a", "b")) == 4.0
        assert overlay.selectivity_factor(Expression.of("a", "b", "c")) == 4.0
        assert overlay.selectivity_factor(Expression.of("a", "c")) == 1.0
        assert overlay.selectivity_factor(Expression.leaf("a")) == 1.0

    def test_factors_multiply(self):
        overlay = StatisticsOverlay()
        overlay.set_selectivity_factor(Expression.of("a", "b"), 2.0)
        overlay.set_selectivity_factor(Expression.of("b", "c"), 3.0)
        assert overlay.selectivity_factor(Expression.of("a", "b", "c")) == pytest.approx(6.0)

    def test_setting_replaces_previous_value(self):
        overlay = StatisticsOverlay()
        overlay.set_selectivity_factor(Expression.of("a", "b"), 2.0)
        delta = overlay.set_selectivity_factor(Expression.of("a", "b"), 8.0)
        assert delta.old_factor == 2.0
        assert delta.new_factor == 8.0
        assert overlay.selectivity_factor(Expression.of("a", "b")) == 8.0

    def test_invalid_factor_rejected(self):
        overlay = StatisticsOverlay()
        with pytest.raises(CatalogError):
            overlay.set_selectivity_factor(Expression.of("a", "b"), 0.0)


class TestScanAndCardinalityFactors:
    def test_scan_cost_factor(self):
        overlay = StatisticsOverlay()
        delta = overlay.set_scan_cost_factor("orders", 4.0)
        assert delta.kind is ChangeKind.SCAN_COST
        assert overlay.scan_cost_factor("orders") == 4.0
        assert overlay.scan_cost_factor("lineitem") == 1.0

    def test_table_cardinality_factor(self):
        overlay = StatisticsOverlay()
        delta = overlay.set_table_cardinality_factor("orders", 0.5)
        assert delta.kind is ChangeKind.TABLE_CARDINALITY
        assert overlay.table_cardinality_factor("orders") == 0.5

    def test_invalid_factors_rejected(self):
        overlay = StatisticsOverlay()
        with pytest.raises(CatalogError):
            overlay.set_scan_cost_factor("orders", -1.0)
        with pytest.raises(CatalogError):
            overlay.set_table_cardinality_factor("orders", 0.0)


class TestDeltaAndSnapshot:
    def test_noop_detection(self):
        delta = StatisticsDelta(ChangeKind.JOIN_SELECTIVITY, Expression.of("a", "b"), 1.0, 1.0)
        assert delta.is_noop
        delta2 = StatisticsDelta(ChangeKind.JOIN_SELECTIVITY, Expression.of("a", "b"), 1.0, 2.0)
        assert not delta2.is_noop

    def test_snapshot_round_trip(self):
        overlay = StatisticsOverlay()
        overlay.set_selectivity_factor(Expression.of("a", "b"), 2.0)
        overlay.set_scan_cost_factor("a", 3.0)
        snapshot = overlay.snapshot()
        assert snapshot["selectivity"]["(a b)"] == 2.0
        assert snapshot["scan_cost"]["a"] == 3.0

    def test_copy_independent(self):
        overlay = StatisticsOverlay()
        overlay.set_scan_cost_factor("a", 3.0)
        clone = overlay.copy()
        clone.set_scan_cost_factor("a", 9.0)
        assert overlay.scan_cost_factor("a") == 3.0

    def test_clear(self):
        overlay = StatisticsOverlay()
        overlay.set_scan_cost_factor("a", 3.0)
        overlay.clear()
        assert overlay.scan_cost_factor("a") == 1.0
