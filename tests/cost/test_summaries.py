"""Tests for expression summaries (Fn_scansummary / Fn_nonscansummary)."""

import pytest

from repro.cost.overrides import StatisticsOverlay
from repro.cost.summaries import SummaryProvider
from repro.relational.expressions import Expression
from repro.workloads.queries import q3s
from repro.workloads.tpch import tpch_catalog


@pytest.fixture()
def provider():
    return SummaryProvider(q3s(), tpch_catalog(0.01))


class TestBaseCardinalities:
    def test_filtered_cardinality_below_base(self, provider):
        base = provider.base_cardinality("customer")
        filtered = provider.filtered_cardinality("customer")
        assert filtered < base
        assert filtered == pytest.approx(base * 0.2, rel=0.01)

    def test_unfiltered_relation(self, provider):
        # orders has a filter (selectivity 0.48); lineitem has one too (0.54).
        assert provider.filtered_cardinality("orders") == pytest.approx(
            provider.base_cardinality("orders") * 0.48, rel=0.01
        )


class TestJoinCardinalities:
    def test_join_cardinality_consistent_across_order(self, provider):
        # Cardinality is a property of the expression, not of any join order.
        col = provider.summary(Expression.of("customer", "orders", "lineitem")).cardinality
        assert col > 0

    def test_join_smaller_than_cross_product(self, provider):
        customers = provider.filtered_cardinality("customer")
        orders = provider.filtered_cardinality("orders")
        joined = provider.summary(Expression.of("customer", "orders")).cardinality
        assert joined < customers * orders

    def test_disconnected_pair_is_cross_product(self, provider):
        customers = provider.filtered_cardinality("customer")
        lineitems = provider.filtered_cardinality("lineitem")
        cross = provider.summary(Expression.of("customer", "lineitem")).cardinality
        assert cross == pytest.approx(customers * lineitems, rel=0.01)

    def test_distinct_counts_capped_by_cardinality(self, provider):
        summary = provider.summary(Expression.of("customer", "orders"))
        for value in summary.distinct.values():
            assert value <= summary.cardinality + 1e-6

    def test_row_width_grows_with_expression(self, provider):
        small = provider.summary(Expression.leaf("customer")).row_width_bytes
        large = provider.summary(Expression.of("customer", "orders")).row_width_bytes
        assert large > small


class TestOverlayInteraction:
    def test_selectivity_factor_scales_cardinality(self):
        overlay = StatisticsOverlay()
        provider = SummaryProvider(q3s(), tpch_catalog(0.01), overlay)
        expr = Expression.of("customer", "orders")
        before = provider.summary(expr).cardinality
        overlay.set_selectivity_factor(expr, 4.0)
        provider.invalidate_containing(expr)
        after = provider.summary(expr).cardinality
        assert after == pytest.approx(before * 4.0, rel=0.01)

    def test_factor_propagates_to_superexpressions(self):
        overlay = StatisticsOverlay()
        provider = SummaryProvider(q3s(), tpch_catalog(0.01), overlay)
        sub = Expression.of("customer", "orders")
        full = Expression.of("customer", "orders", "lineitem")
        before = provider.summary(full).cardinality
        overlay.set_selectivity_factor(sub, 0.5)
        provider.invalidate_containing(sub)
        assert provider.summary(full).cardinality == pytest.approx(before * 0.5, rel=0.01)

    def test_cache_must_be_invalidated(self):
        overlay = StatisticsOverlay()
        provider = SummaryProvider(q3s(), tpch_catalog(0.01), overlay)
        expr = Expression.of("customer", "orders")
        before = provider.summary(expr).cardinality
        overlay.set_selectivity_factor(expr, 4.0)
        # Without invalidation the cached value is returned.
        assert provider.summary(expr).cardinality == before
        provider.invalidate_containing(expr)
        assert provider.summary(expr).cardinality != before

    def test_invalidate_containing_only_affects_supersets(self):
        provider = SummaryProvider(q3s(), tpch_catalog(0.01))
        sub = Expression.of("customer", "orders")
        other = Expression.leaf("lineitem")
        provider.summary(sub)
        provider.summary(other)
        provider.invalidate_containing(sub)
        assert sub.aliases not in provider._cache
        assert other.aliases in provider._cache

    def test_table_cardinality_factor(self):
        overlay = StatisticsOverlay()
        provider = SummaryProvider(q3s(), tpch_catalog(0.01), overlay)
        before = provider.base_cardinality("orders")
        overlay.set_table_cardinality_factor("orders", 2.0)
        assert provider.base_cardinality("orders") == pytest.approx(before * 2.0)
