"""Tests for the selectivity estimator."""

import pytest

from repro.cost.selectivity import SelectivityEstimator
from repro.relational.expressions import ColumnRef
from repro.relational.predicates import ComparisonOp, FilterPredicate, JoinPredicate
from repro.workloads.queries import q3s, q5
from repro.workloads.tpch import tpch_catalog


@pytest.fixture(scope="module")
def estimator():
    return SelectivityEstimator(tpch_catalog(0.01))


class TestFilterSelectivity:
    def test_hint_takes_precedence(self, estimator):
        query = q3s()
        predicate = FilterPredicate.comparison(
            ColumnRef("customer", "c_mktsegment"), ComparisonOp.EQ, 2, selectivity_hint=0.2
        )
        assert estimator.filter_selectivity(query, predicate) == 0.2

    def test_equality_uses_distinct_count(self, estimator):
        query = q3s()
        predicate = FilterPredicate.comparison(ColumnRef("customer", "c_mktsegment"), ComparisonOp.EQ, 2)
        value = estimator.filter_selectivity(query, predicate)
        assert value == pytest.approx(1.0 / 5.0, rel=0.5)

    def test_range_uses_histogram(self, estimator):
        query = q3s()
        # o_orderdate spans [0, 2555]; < 1277 should be about half.
        predicate = FilterPredicate.comparison(ColumnRef("orders", "o_orderdate"), ComparisonOp.LT, 1277)
        value = estimator.filter_selectivity(query, predicate)
        assert value == pytest.approx(0.5, abs=0.1)

    def test_not_equal_close_to_one(self, estimator):
        query = q3s()
        predicate = FilterPredicate.comparison(ColumnRef("customer", "c_mktsegment"), ComparisonOp.NE, 2)
        assert estimator.filter_selectivity(query, predicate) > 0.7

    def test_result_clamped(self, estimator):
        query = q3s()
        predicate = FilterPredicate.comparison(ColumnRef("orders", "o_orderdate"), ComparisonOp.LT, 99999)
        value = estimator.filter_selectivity(query, predicate)
        assert 0.0 < value <= 1.0


class TestJoinSelectivity:
    def test_pk_fk_join_selectivity(self, estimator):
        query = q3s()
        predicate = JoinPredicate(
            ColumnRef("customer", "c_custkey"), ColumnRef("orders", "o_custkey")
        )
        value = estimator.join_selectivity(query, predicate)
        # 1 / ndv(custkey) at 1% scale = 1/1500
        assert value == pytest.approx(1.0 / 1500.0, rel=0.2)

    def test_non_equi_join_uses_default(self, estimator):
        query = q3s()
        predicate = JoinPredicate(
            ColumnRef("customer", "c_custkey"),
            ColumnRef("orders", "o_custkey"),
            ComparisonOp.LT,
        )
        assert estimator.join_selectivity(query, predicate) == pytest.approx(0.3)

    def test_small_domain_join(self, estimator):
        query = q5()
        predicate = JoinPredicate(
            ColumnRef("nation", "n_regionkey"), ColumnRef("region", "r_regionkey")
        )
        value = estimator.join_selectivity(query, predicate)
        assert value == pytest.approx(1.0 / 5.0, rel=0.3)

    def test_distinct_values_lookup(self, estimator):
        query = q3s()
        assert estimator.distinct_values(query, "customer", "c_mktsegment") == pytest.approx(
            5.0, rel=0.1
        )
