"""Tests for the physical cost model (Fn_scancost / Fn_nonscancost / Fn_sum)."""

import pytest

from repro.cost.cost_model import CostModel, CostParameters
from repro.cost.overrides import StatisticsOverlay
from repro.relational.expressions import ColumnRef, Expression
from repro.relational.plan import PhysicalOperator
from repro.relational.properties import ANY_PROPERTY, PhysicalProperty
from repro.workloads.queries import q3s
from repro.workloads.tpch import tpch_catalog


@pytest.fixture()
def model():
    return CostModel(q3s(), tpch_catalog(0.01))


class TestScanCosts:
    def test_seq_scan_positive_and_grows_with_table(self, model):
        small = model.scan_cost("customer", PhysicalOperator.SEQ_SCAN, ANY_PROPERTY)
        large = model.scan_cost("lineitem", PhysicalOperator.SEQ_SCAN, ANY_PROPERTY)
        assert 0 < small < large

    def test_sorted_scan_costs_more_than_seq(self, model):
        seq = model.scan_cost("orders", PhysicalOperator.SEQ_SCAN, ANY_PROPERTY)
        sorted_scan = model.scan_cost(
            "orders",
            PhysicalOperator.SORTED_SCAN,
            PhysicalProperty.sorted_on(ColumnRef("orders", "o_custkey")),
        )
        assert sorted_scan > seq

    def test_index_scan_cheaper_for_selective_filter(self):
        # The customer filter keeps 20% of rows; an index scan avoids reading
        # the other 80% of pages sequentially but pays random I/O, so it should
        # be in the same ballpark — crucially it must respond to selectivity.
        model = CostModel(q3s(), tpch_catalog(0.01))
        index_cost = model.scan_cost("customer", PhysicalOperator.INDEX_SCAN, ANY_PROPERTY)
        seq_cost = model.scan_cost("customer", PhysicalOperator.SEQ_SCAN, ANY_PROPERTY)
        assert index_cost > 0
        assert index_cost < seq_cost * 10

    def test_scan_cost_overlay_factor(self):
        overlay = StatisticsOverlay()
        model = CostModel(q3s(), tpch_catalog(0.01), overlay=overlay)
        before = model.scan_cost("orders", PhysicalOperator.SEQ_SCAN, ANY_PROPERTY)
        overlay.set_scan_cost_factor("orders", 4.0)
        after = model.scan_cost("orders", PhysicalOperator.SEQ_SCAN, ANY_PROPERTY)
        assert after == pytest.approx(before * 4.0)

    def test_non_scan_operator_rejected(self, model):
        with pytest.raises(Exception):
            model.scan_cost("orders", PhysicalOperator.HASH_JOIN, ANY_PROPERTY)


class TestJoinCosts:
    def _summaries(self, model):
        left = model.summary(Expression.leaf("customer"))
        right = model.summary(Expression.leaf("orders"))
        output = model.summary(Expression.of("customer", "orders"))
        return output, left, right

    def test_all_join_operators_positive(self, model):
        output, left, right = self._summaries(model)
        for operator in (
            PhysicalOperator.HASH_JOIN,
            PhysicalOperator.SORT_MERGE_JOIN,
            PhysicalOperator.INDEX_NL_JOIN,
            PhysicalOperator.NESTED_LOOP_JOIN,
        ):
            assert model.join_local_cost(operator, output, left, right) > 0

    def test_nested_loop_most_expensive(self, model):
        output, left, right = self._summaries(model)
        nested = model.join_local_cost(PhysicalOperator.NESTED_LOOP_JOIN, output, left, right)
        hash_join = model.join_local_cost(PhysicalOperator.HASH_JOIN, output, left, right)
        assert nested > hash_join

    def test_hash_join_asymmetric_in_build_side(self, model):
        output, left, right = self._summaries(model)
        one_way = model.join_local_cost(PhysicalOperator.HASH_JOIN, output, left, right)
        other_way = model.join_local_cost(PhysicalOperator.HASH_JOIN, output, right, left)
        assert one_way != pytest.approx(other_way)

    def test_scan_operator_rejected_as_join(self, model):
        output, left, right = self._summaries(model)
        with pytest.raises(Exception):
            model.join_local_cost(PhysicalOperator.SEQ_SCAN, output, left, right)


class TestCombinationAndHelpers:
    def test_combine_is_sum(self, model):
        assert model.combine(1.0, 2.0, 3.0) == 6.0
        assert model.combine(5.0) == 5.0

    def test_sort_enforcer_cost_grows_with_rows(self, model):
        small = model.sort_enforcer_cost(model.summary(Expression.leaf("customer")))
        large = model.sort_enforcer_cost(model.summary(Expression.leaf("lineitem")))
        assert 0 < small < large

    def test_aggregate_cost_positive(self, model):
        summary = model.summary(Expression.of("customer", "orders", "lineitem"))
        assert model.aggregate_cost(summary, 100.0) > 0

    def test_custom_parameters_change_costs(self):
        default = CostModel(q3s(), tpch_catalog(0.01))
        expensive_io = CostModel(
            q3s(),
            tpch_catalog(0.01),
            parameters=CostParameters(sequential_page_cost=100.0),
        )
        assert expensive_io.scan_cost(
            "orders", PhysicalOperator.SEQ_SCAN, ANY_PROPERTY
        ) > default.scan_cost("orders", PhysicalOperator.SEQ_SCAN, ANY_PROPERTY)
