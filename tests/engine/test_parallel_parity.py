"""Differential parity for the morsel-parallel executor.

The parallel executor promises *byte-identical* results to the serial
vectorized engine — morsels merge in morsel order, group-by keeps serial
first-occurrence order, float aggregation never reassociates — so every test
here runs the same statement through the row-engine oracle, the serial
vectorized engine (``workers=1``) and the parallel one (``workers=4``) and
asserts identical rows *and* identical observed cardinalities (the input the
re-optimizer consumes; per-morsel counts must sum to the serial counts).

Both storage representations are covered: typed ``array``-backed column
buffers (what SQL-created tables use) and plain list-backed columns (adopted
legacy data) — the kernels' fast paths and the pure-Python fallbacks must
agree.  Morsel-boundary edge cases get dedicated tests: an empty table, a
table smaller than one morsel, and a batch size that does not divide the row
count.
"""

import random

import pytest
from test_expression_parity import ExpressionGenerator

import repro
from repro.engine.vectorized.columns import ColumnTable
from repro.storage.buffers import column_kinds
from repro.workloads.sql_queries import PARITY_SQL
from repro.workloads.tpch import catalog_from_data, generate_tpch_data, tpch_schema

STORES = ("typed", "list")
QUERY_NAMES = sorted(PARITY_SQL)

#: (label, workers) — the row engine ignores workers and serves as the oracle.
ROLES = (("row", None), ("serial", 1), ("parallel", 4))


def build_tables(dataset, variant):
    """The TPC-H tables as ColumnTables — typed buffers or plain lists."""
    tables = {}
    for table in tpch_schema().tables:
        kinds = None
        if variant == "typed":
            kinds = column_kinds(
                table.column_names, [column.data_type for column in table.columns]
            )
        tables[table.name] = ColumnTable.from_rows(
            list(dataset[table.name]), columns=table.column_names, kinds=kinds
        )
    return tables


@pytest.fixture(scope="module")
def tpch_databases():
    """{store variant: {role: Database}} over one shared TPC-H dataset."""
    dataset = generate_tpch_data(scale_factor=0.0005, seed=5)
    catalog = catalog_from_data(dataset)
    databases = {}
    for variant in STORES:
        tables = build_tables(dataset, variant)
        databases[variant] = {
            label: repro.connect(
                catalog,
                tables,
                engine="row" if label == "row" else "vectorized",
                workers=workers,
            ).database
            for label, workers in ROLES
        }
    return databases


@pytest.mark.parametrize("variant", STORES)
@pytest.mark.parametrize("name", QUERY_NAMES)
def test_workload_parity(name, variant, tpch_databases):
    """The whole parity workload agrees across engines, workers and stores."""
    sql = PARITY_SQL[name]
    results = {
        label: database.execute(sql)
        for label, database in tpch_databases[variant].items()
    }
    for label in ("serial", "parallel"):
        assert results[label].rows == results["row"].rows, (name, variant, label)
        assert (
            results[label].execution.observed_cardinalities
            == results["row"].execution.observed_cardinalities
        ), (name, variant, label)
    assert results["parallel"].execution.workers == 4, name
    assert results["serial"].execution.workers is None, name


def test_typed_and_list_stores_agree(tpch_databases):
    """Same statement over typed buffers vs list columns: identical output."""
    sql = PARITY_SQL["Q1"]
    outputs = {
        variant: tpch_databases[variant]["parallel"].execute(sql).rows
        for variant in STORES
    }
    assert outputs["typed"] == outputs["list"]
    assert repr(outputs["typed"]) == repr(outputs["list"])


# ---------------------------------------------------------------------------
# Randomized expression trees (reusing the parity grammar) across stores
# ---------------------------------------------------------------------------

TPCH_COLUMNS = {
    "l_orderkey": "int",
    "l_quantity": "float",
    "l_extendedprice": "float",
    "l_shipdate": "int",
    "l_returnflag": "int",
}
TPCH_LITERALS = {
    "l_orderkey": [10, 80, 400, 900],
    "l_quantity": [5.0, 17.0, 33.0, 49.0],
    "l_extendedprice": [1000.0, 20_000.0, 60_000.0],
    "l_shipdate": [365, 1100, 2000],
    "l_returnflag": [0, 1, 2],
}

RANDOM_SEEDS = range(60)


@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_random_tree_parity_across_workers(seed, tpch_databases):
    rng = random.Random(9000 + seed)
    generator = ExpressionGenerator(rng, TPCH_COLUMNS, TPCH_LITERALS)
    predicate = generator.boolean(depth=3)
    sql = f"SELECT l_orderkey FROM lineitem WHERE {predicate} ORDER BY l_orderkey"
    variant = STORES[seed % len(STORES)]
    results = {
        label: database.execute(sql)
        for label, database in tpch_databases[variant].items()
    }
    for label in ("serial", "parallel"):
        assert results[label].rows == results["row"].rows, (sql, variant, label)
        assert (
            results[label].execution.observed_cardinalities
            == results["row"].execution.observed_cardinalities
        ), (sql, variant, label)


# ---------------------------------------------------------------------------
# Morsel-boundary edge cases (DDL-created tables, typed store path)
# ---------------------------------------------------------------------------


def connect_pair(script, batch_size=None):
    """A serial and a workers=4 connection over identically-built databases."""
    serial = repro.connect(engine="vectorized", batch_size=batch_size)
    parallel = repro.connect(engine="vectorized", batch_size=batch_size, workers=4)
    for connection in (serial, parallel):
        connection.executescript(script)
    return serial, parallel


def assert_same_result(serial, parallel, sql):
    left = serial.database.execute(sql)
    right = parallel.database.execute(sql)
    assert left.rows == right.rows, sql
    assert repr(left.rows) == repr(right.rows), sql
    assert (
        left.execution.observed_cardinalities == right.execution.observed_cardinalities
    ), sql


def test_parallel_empty_table():
    script = "CREATE TABLE empty_t (k INTEGER, v FLOAT, PRIMARY KEY (k)); ANALYZE empty_t"
    serial, parallel = connect_pair(script)
    assert_same_result(serial, parallel, "SELECT k FROM empty_t WHERE v > 1.0")
    assert_same_result(serial, parallel, "SELECT COUNT(*), SUM(v) FROM empty_t")


def test_parallel_result_smaller_than_one_morsel():
    values = ", ".join(f"({k}, {k * 0.5})" for k in range(10))
    script = (
        "CREATE TABLE tiny (k INTEGER, v FLOAT, PRIMARY KEY (k)); "
        f"INSERT INTO tiny VALUES {values}; ANALYZE tiny"
    )
    serial, parallel = connect_pair(script)  # default morsel size 1024 >> 10 rows
    assert_same_result(serial, parallel, "SELECT k, v FROM tiny WHERE v > 1.2 ORDER BY k")
    assert_same_result(serial, parallel, "SELECT COUNT(*), SUM(v), MIN(k), MAX(k) FROM tiny")


def test_parallel_morsel_size_not_dividing_row_count():
    values = ", ".join(f"({k}, {k % 9}, {k * 0.25})" for k in range(100))
    script = (
        "CREATE TABLE mod_t (k INTEGER, g INTEGER, v FLOAT, PRIMARY KEY (k)); "
        f"INSERT INTO mod_t VALUES {values}; ANALYZE mod_t"
    )
    serial, parallel = connect_pair(script, batch_size=7)  # 100 = 14*7 + 2
    assert_same_result(serial, parallel, "SELECT k FROM mod_t WHERE v > 3.0 ORDER BY k")
    # unordered GROUP BY: parallel must keep serial first-occurrence group order
    assert_same_result(serial, parallel, "SELECT g, COUNT(*), SUM(v) FROM mod_t GROUP BY g")


def test_explain_analyze_reports_workers():
    script = (
        "CREATE TABLE w_t (k INTEGER, PRIMARY KEY (k)); "
        "INSERT INTO w_t VALUES (1), (2), (3); ANALYZE w_t"
    )
    serial, parallel = connect_pair(script)
    sql = "EXPLAIN ANALYZE SELECT COUNT(*) FROM w_t"
    assert "workers=4" in parallel.database.execute(sql).plan_text
    assert "workers=" not in serial.database.execute(sql).plan_text
