"""Regression tests: NULLs reaching filter comparators on both engines.

Before the scalar-expression refactor a ``None`` value flowing into a range
comparator raised ``TypeError`` ('<' not supported between NoneType and int)
or silently mis-compared on equality.  Under SQL three-valued logic the
comparison is NULL and the row is filtered out — on both engines.
"""

import pytest

import repro

DDL = (
    "CREATE TABLE t (k INTEGER, qty INTEGER, tag TEXT); "
    "INSERT INTO t VALUES (1, 5, 'a'), (2, NULL, 'b'), (3, 50, NULL), "
    "(4, 7, 'a'), (5, NULL, NULL)"
)


@pytest.fixture(scope="module", params=["row", "vectorized"])
def connection(request):
    conn = repro.connect(engine=request.param)
    conn.executescript(DDL)
    return conn


def keys(conn, sql, params=None):
    return [row[0] for row in conn.execute(sql, params).fetchall()]


class TestNullFilteredOut:
    def test_range_comparator_does_not_raise_on_null(self, connection):
        # k=2 and k=5 have NULL qty: the comparison is NULL, not an error.
        assert keys(connection, "SELECT k FROM t WHERE qty < 10 ORDER BY k") == [1, 4]

    def test_equality_on_null_matches_nothing(self, connection):
        assert keys(connection, "SELECT k FROM t WHERE qty = 50") == [3]
        # NULL = NULL is NULL, so no qty value ever equals a NULL cell.
        assert keys(connection, "SELECT k FROM t WHERE qty != 5 ORDER BY k") == [3, 4]

    def test_is_null_finds_the_null_rows(self, connection):
        assert keys(connection, "SELECT k FROM t WHERE qty IS NULL ORDER BY k") == [2, 5]
        assert keys(connection, "SELECT k FROM t WHERE qty IS NOT NULL ORDER BY k") == [1, 3, 4]

    def test_not_over_null_comparison_still_filters(self, connection):
        # NOT (NULL < 10) is NULL: NOT does not resurrect NULL rows.
        assert keys(connection, "SELECT k FROM t WHERE NOT qty < 10 ORDER BY k") == [3]

    def test_null_in_disjunction(self, connection):
        # NULL OR TRUE is TRUE: a NULL arm must not hide a TRUE arm.
        assert keys(
            connection, "SELECT k FROM t WHERE qty < 10 OR tag = 'b' ORDER BY k"
        ) == [1, 2, 4]

    def test_between_with_null_operand(self, connection):
        assert keys(connection, "SELECT k FROM t WHERE qty BETWEEN 1 AND 10 ORDER BY k") == [1, 4]

    def test_in_list_with_null_operand(self, connection):
        assert keys(connection, "SELECT k FROM t WHERE qty IN (5, 50) ORDER BY k") == [1, 3]

    def test_parameterized_range_on_null(self, connection):
        assert keys(connection, "SELECT k FROM t WHERE qty < ? ORDER BY k", (10,)) == [1, 4]


class TestEngineAgreementOnNulls:
    """Both engines produce byte-identical results over NULL-heavy data."""

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT k FROM t WHERE qty < 10 ORDER BY k",
            "SELECT k FROM t WHERE qty IS NULL ORDER BY k",
            "SELECT k, qty FROM t WHERE NOT qty >= 7 ORDER BY k",
            "SELECT k FROM t WHERE tag LIKE 'a%' ORDER BY k",
            "SELECT qty * 2 AS dbl FROM t WHERE k <= 3 ORDER BY k",
        ],
    )
    def test_row_vs_vectorized(self, sql):
        results = {}
        for engine in ("row", "vectorized"):
            conn = repro.connect(engine=engine)
            conn.executescript(DDL)
            results[engine] = conn.execute(sql).fetchall()
        assert results["row"] == results["vectorized"]

    def test_derived_expression_propagates_null(self):
        for engine in ("row", "vectorized"):
            conn = repro.connect(engine=engine)
            conn.executescript(DDL)
            rows = conn.execute("SELECT qty * 2 AS dbl FROM t ORDER BY k").fetchall()
            assert [row[0] for row in rows] == [10, None, 100, 14, None]
