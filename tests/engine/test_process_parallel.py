"""Differential parity and lifecycle tests for the process morsel executor.

The process executor promises the same contract as the thread one — results
byte-identical to the serial vectorized engine, which is itself held to the
row-engine oracle — *plus* a fallback story: when shared memory is
unavailable the statement silently (but measurably, and truthfully reported
in EXPLAIN ANALYZE) runs on threads, and a scan whose filter touches a
demoted list column stays on the thread path while the rest of the
statement keeps fanning out to processes.  Every mode is asserted
byte-identical here over the full parity workload.

Lifecycle coverage: a worker killed mid-statement raises a clean
:class:`ExecutionError` (never a hang), leaks no shared-memory segments,
and the next statement transparently rebuilds the pool; pool teardown is
idempotent.
"""

import os
import signal

import pytest

import repro
from repro.common.errors import ExecutionError, SqlError
from repro.engine.parallel import (
    ProcessMorselPool,
    parallel_stats,
    reset_parallel_stats,
    shared_process_pool,
    shutdown_shared_pools,
)
from repro.engine.vectorized.columns import ColumnTable
from repro.storage import shm
from repro.storage.buffers import TypedColumn, column_kinds
from repro.workloads.sql_queries import PARITY_SQL
from repro.workloads.tpch import catalog_from_data, generate_tpch_data, tpch_schema

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="shared memory unavailable on this platform"
)

QUERY_NAMES = sorted(PARITY_SQL)

#: Representative slice for the forced-fallback modes (scan-heavy, join,
#: grouped aggregation, and an ORDER BY + LIMIT shape).
FALLBACK_SLICE = ("Q1", "Q3", "Q6", "TopAcctbal")

ROLES = (("row", None, None), ("serial", 1, None), ("thread", 4, "thread"), ("process", 4, "process"))


def build_typed_tables(dataset):
    tables = {}
    for table in tpch_schema().tables:
        kinds = column_kinds(
            table.column_names, [column.data_type for column in table.columns]
        )
        tables[table.name] = ColumnTable.from_rows(
            list(dataset[table.name]), columns=table.column_names, kinds=kinds
        )
    return tables


@pytest.fixture(scope="module")
def tpch_dataset():
    return generate_tpch_data(scale_factor=0.0005, seed=5)


@pytest.fixture(scope="module")
def databases(tpch_dataset):
    """{role: Database} over one shared typed-buffer TPC-H store."""
    catalog = catalog_from_data(tpch_dataset)
    tables = build_typed_tables(tpch_dataset)
    return {
        label: repro.connect(
            catalog,
            tables,
            engine="row" if label == "row" else "vectorized",
            workers=workers,
            executor=executor,
        ).database
        for label, workers, executor in ROLES
    }


@pytest.mark.parametrize("name", QUERY_NAMES)
def test_process_workload_parity(name, databases):
    """Full parity workload: process == thread == serial == row oracle."""
    sql = PARITY_SQL[name]
    results = {label: database.execute(sql) for label, database in databases.items()}
    for label in ("serial", "thread", "process"):
        assert results[label].rows == results["row"].rows, (name, label)
        assert repr(results[label].rows) == repr(results["row"].rows), (name, label)
        assert (
            results[label].execution.observed_cardinalities
            == results["row"].execution.observed_cardinalities
        ), (name, label)
    assert results["process"].execution.executor == "process", name
    assert results["thread"].execution.executor == "thread", name
    assert results["serial"].execution.executor is None, name


def test_no_statement_leaks_shared_memory(databases):
    for name in FALLBACK_SLICE:
        databases["process"].execute(PARITY_SQL[name])
    assert shm.live_export_names() == []


def test_no_shm_fallback_parity(databases):
    """Shared memory off: the statement runs on threads, byte-identically."""
    reset_parallel_stats()
    try:
        shm.set_shm_enabled(False)
        for name in FALLBACK_SLICE:
            sql = PARITY_SQL[name]
            fallback = databases["process"].execute(sql)
            oracle = databases["row"].execute(sql)
            assert fallback.rows == oracle.rows, name
            assert repr(fallback.rows) == repr(oracle.rows), name
            # The footer reports what actually ran, not what was asked for.
            assert fallback.execution.executor == "thread", name
        stats = parallel_stats()
        assert stats["fallbacks"].get("no-shm", 0) >= len(FALLBACK_SLICE)
        assert stats["shm_bytes_exported"] == 0
    finally:
        shm.set_shm_enabled(None)


def test_demoted_column_fallback_parity(tpch_dataset):
    """A mid-table demote-to-list keeps the scan serial but the results equal."""
    catalog = catalog_from_data(tpch_dataset)
    tables = build_typed_tables(tpch_dataset)
    # Append one row whose l_quantity cannot live in a float64 buffer:
    # the column demotes to a plain list mid-table, exactly the adopted
    # legacy-data shape the fallback exists for.
    extra = dict(tpch_dataset["lineitem"][0])
    extra["l_quantity"] = 2**53 + 1  # not exactly representable as float64
    tables["lineitem"].append_rows([extra])
    assert not isinstance(tables["lineitem"].column("l_quantity"), TypedColumn)

    roles = {
        label: repro.connect(
            catalog,
            tables,
            engine="row" if label == "row" else "vectorized",
            workers=workers,
            executor=executor,
        ).database
        for label, workers, executor in ROLES
    }
    reset_parallel_stats()
    for name in ("Q1", "Q6"):  # both filter or aggregate over lineitem
        sql = PARITY_SQL[name]
        results = {label: database.execute(sql) for label, database in roles.items()}
        for label in ("serial", "thread", "process"):
            assert results[label].rows == results["row"].rows, (name, label)
            assert repr(results[label].rows) == repr(results["row"].rows), (name, label)
    # Q6 filters on the demoted l_quantity: that scan fell back, yet the
    # statement still reports (and elsewhere uses) the process executor.
    assert parallel_stats()["fallbacks"].get("demoted-column", 0) >= 1
    assert results["process"].execution.executor == "process"


def test_explain_analyze_reports_executor(databases):
    sql = "EXPLAIN ANALYZE " + PARITY_SQL["Q6"]
    process_text = databases["process"].execute(sql).plan_text
    assert "workers=4" in process_text
    assert "executor=process" in process_text
    thread_text = databases["thread"].execute(sql).plan_text
    assert "executor=thread" in thread_text
    serial_text = databases["serial"].execute(sql).plan_text
    assert "executor=" not in serial_text


def test_database_stats_expose_parallel_counters(databases):
    reset_parallel_stats()
    databases["process"].execute(PARITY_SQL["Q1"])
    stats = databases["process"].stats()["parallel"]
    assert set(stats) == {
        "morsels_dispatched",
        "shm_bytes_exported",
        "pickled_bytes_exported",
        "fallbacks",
    }
    assert stats["morsels_dispatched"] > 0
    assert stats["shm_bytes_exported"] > 0
    assert isinstance(stats["fallbacks"], dict)


def test_invalid_executor_rejected():
    with pytest.raises(SqlError):
        repro.connect(executor="fibers")


def test_worker_crash_raises_cleanly_and_pool_rebuilds():
    """SIGKILL mid-fleet: clean error, no leaked segments, next query works."""
    connection = repro.connect(engine="vectorized", workers=3, executor="process")
    values = ", ".join(f"({k}, {k * 0.5})" for k in range(4000))
    connection.executescript(
        "CREATE TABLE crash_t (k INTEGER, v FLOAT, PRIMARY KEY (k)); "
        f"INSERT INTO crash_t VALUES {values}; ANALYZE crash_t"
    )
    sql = "SELECT COUNT(*), SUM(v) FROM crash_t WHERE v > 10.0"
    healthy = connection.database.execute(sql)
    assert healthy.execution.executor == "process"

    pool = shared_process_pool(3)
    for pid in pool.worker_pids():
        os.kill(pid, signal.SIGKILL)
    with pytest.raises(ExecutionError):
        connection.database.execute(sql)
    assert pool.broken
    assert shm.live_export_names() == []  # the failed statement leaked nothing

    recovered = connection.database.execute(sql)  # fresh pool, same answer
    assert recovered.rows == healthy.rows
    assert recovered.execution.executor == "process"
    assert not shared_process_pool(3).broken


def test_exit_task_breaks_pool_without_hanging():
    pool = ProcessMorselPool(1)
    try:
        with pytest.raises(ExecutionError):
            pool.run_tasks(999_999, [("exit_for_test",)])
        assert pool.broken
    finally:
        pool.shutdown()
        pool.shutdown()  # idempotent


def test_shutdown_shared_pools_idempotent_and_recoverable():
    shutdown_shared_pools()
    shutdown_shared_pools()  # second call is a no-op
    # Pools are recreated lazily afterwards; statements keep working.
    connection = repro.connect(engine="vectorized", workers=2, executor="process")
    values = ", ".join(f"({k})" for k in range(3000))
    connection.executescript(
        "CREATE TABLE after_t (k INTEGER, PRIMARY KEY (k)); "
        f"INSERT INTO after_t VALUES {values}; ANALYZE after_t"
    )
    result = connection.database.execute("SELECT COUNT(*) FROM after_t WHERE k > 10")
    assert result.rows == [{"count(*)": 2989}]
    assert result.execution.executor == "process"
