"""Dedicated tests for the executor's join paths.

Covers the non-equi (residual) join path, the pure nested-loop fallback used
when no equi-join predicate is available, and ``_nested_loop`` itself — none
of which had focused coverage before.
"""

import pytest

from repro.engine.executor import PlanExecutor
from repro.relational.expressions import Expression
from repro.relational.plan import PhysicalOperator, PhysicalPlan
from repro.relational.predicates import ComparisonOp
from repro.relational.query import QueryBuilder


def join_plan(left_alias, right_alias):
    left = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf(left_alias))
    right = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf(right_alias))
    return PhysicalPlan(
        PhysicalOperator.NESTED_LOOP_JOIN,
        Expression.of(left_alias, right_alias),
        children=(left, right),
    )


class TestNestedLoopUnit:
    def test_cross_product_counts(self):
        left = [{"a.x": 1}, {"a.x": 2}]
        right = [{"b.y": 10}, {"b.y": 20}, {"b.y": 30}]
        rows = PlanExecutor._nested_loop(left, right)
        assert len(rows) == 6
        assert {(row["a.x"], row["b.y"]) for row in rows} == {
            (x, y) for x in (1, 2) for y in (10, 20, 30)
        }

    def test_right_side_wins_on_key_collision(self):
        rows = PlanExecutor._nested_loop([{"k": 1}], [{"k": 2}])
        assert rows == [{"k": 2}]

    def test_empty_sides(self):
        assert PlanExecutor._nested_loop([], [{"b.y": 1}]) == []
        assert PlanExecutor._nested_loop([{"a.x": 1}], []) == []

    def test_input_rows_not_mutated(self):
        left = [{"a.x": 1}]
        right = [{"b.y": 2}]
        PlanExecutor._nested_loop(left, right)
        assert left == [{"a.x": 1}]
        assert right == [{"b.y": 2}]


class TestPureThetaJoin:
    """A join whose only predicate is non-equi: nested loop + residual filter."""

    def test_less_than_join(self):
        query = (
            QueryBuilder("theta")
            .scan("t", alias="a")
            .scan("u", alias="b")
            .join_on("a.v", "b.v", ComparisonOp.LT)
            .build()
        )
        data = {
            "t": [{"v": 1}, {"v": 5}, {"v": 9}],
            "u": [{"v": 4}, {"v": 6}],
        }
        result = PlanExecutor(query, data).execute(join_plan("a", "b"))
        pairs = {(row["a.v"], row["b.v"]) for row in result.rows}
        assert pairs == {(1, 4), (1, 6), (5, 6)}

    @pytest.mark.parametrize(
        "op,expected",
        [
            (ComparisonOp.NE, {(1, 2), (2, 1)}),
            (ComparisonOp.GE, {(1, 1), (2, 1), (2, 2)}),
            (ComparisonOp.GT, {(2, 1)}),
            (ComparisonOp.LE, {(1, 1), (1, 2), (2, 2)}),
        ],
    )
    def test_each_theta_operator(self, op, expected):
        query = (
            QueryBuilder("theta")
            .scan("t", alias="a")
            .scan("u", alias="b")
            .join_on("a.v", "b.v", op)
            .build()
        )
        data = {"t": [{"v": 1}, {"v": 2}], "u": [{"v": 1}, {"v": 2}]}
        result = PlanExecutor(query, data).execute(join_plan("a", "b"))
        assert {(row["a.v"], row["b.v"]) for row in result.rows} == expected

    def test_null_on_either_side_drops_row(self):
        query = (
            QueryBuilder("theta")
            .scan("t", alias="a")
            .scan("u", alias="b")
            .join_on("a.v", "b.v", ComparisonOp.LT)
            .build()
        )
        data = {"t": [{"v": None}, {"v": 1}], "u": [{"v": 2}, {"v": None}]}
        result = PlanExecutor(query, data).execute(join_plan("a", "b"))
        assert {(row["a.v"], row["b.v"]) for row in result.rows} == {(1, 2)}

    def test_observed_cardinality_after_residual(self):
        """The recorded cardinality reflects the post-filter output."""
        query = (
            QueryBuilder("theta")
            .scan("t", alias="a")
            .scan("u", alias="b")
            .join_on("a.v", "b.v", ComparisonOp.LT)
            .build()
        )
        data = {"t": [{"v": 1}, {"v": 9}], "u": [{"v": 5}]}
        result = PlanExecutor(query, data).execute(join_plan("a", "b"))
        assert result.observed_cardinalities[Expression.of("a", "b")] == 1


class TestEquiPlusResidual:
    """Equi predicate drives the hash join; theta predicate filters after."""

    def test_residual_applied_after_hash_join(self):
        query = (
            QueryBuilder("mixed")
            .scan("t", alias="a")
            .scan("u", alias="b")
            .join_on("a.k", "b.k")
            .join_on("a.v", "b.v", ComparisonOp.GT)
            .build()
        )
        data = {
            "a": [{"k": 1, "v": 10}, {"k": 1, "v": 1}, {"k": 2, "v": 10}],
            "b": [{"k": 1, "v": 5}, {"k": 3, "v": 0}],
        }
        scan_a = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf("a"))
        scan_b = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf("b"))
        plan = PhysicalPlan(
            PhysicalOperator.HASH_JOIN, Expression.of("a", "b"), children=(scan_a, scan_b)
        )
        result = PlanExecutor(query, data).execute(plan)
        # k=1 matches two a-rows; only v=10 > 5 survives the residual.
        assert result.row_count == 1
        assert result.rows[0]["a.k"] == 1
        assert result.rows[0]["a.v"] == 10


class TestThetaJoinThroughOptimizer:
    def test_theta_join_end_to_end(self, catalog):
        """A theta-join query survives the full optimize-then-execute path."""
        from repro.optimizer.declarative import DeclarativeOptimizer

        query = (
            QueryBuilder("theta_e2e")
            .scan("region", alias="r1")
            .scan("region", alias="r2")
            .join_on("r1.r_regionkey", "r2.r_regionkey", ComparisonOp.LT)
            .select("r1.r_name", "r2.r_name")
            .build()
        )
        plan = DeclarativeOptimizer(query, catalog).optimize().plan
        data = {
            "r1": [{"r_regionkey": key, "r_name": key} for key in range(3)],
            "r2": [{"r_regionkey": key, "r_name": key} for key in range(3)],
        }
        result = PlanExecutor(query, data).execute(plan)
        pairs = {(row["r1.r_regionkey"], row["r2.r_regionkey"]) for row in result.rows}
        assert pairs == {(0, 1), (0, 2), (1, 2)}
