"""Unit tests for the vectorized engine's columnar building blocks."""

import pytest

from repro.common.errors import ExecutionError
from repro.engine.vectorized import ColumnTable, TableView, VectorizedExecutor
from repro.relational.expressions import Expression
from repro.relational.plan import PhysicalOperator, PhysicalPlan
from repro.relational.predicates import ComparisonOp
from repro.relational.query import AggregateFunction, QueryBuilder


def scan_plan(alias):
    return PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf(alias))


def join_plan(left_alias, right_alias):
    return PhysicalPlan(
        PhysicalOperator.HASH_JOIN,
        Expression.of(left_alias, right_alias),
        children=(scan_plan(left_alias), scan_plan(right_alias)),
    )


class TestColumnTable:
    def test_row_count_inferred_from_columns(self):
        table = ColumnTable({"a.k": [1, 3], "a.v": [2, 4]})
        assert table.row_count == 2

    def test_to_rows_pivots_in_row_order(self):
        table = ColumnTable({"k": [1, 2], "v": ["x", "y"]})
        assert table.to_rows() == [{"k": 1, "v": "x"}, {"k": 2, "v": "y"}]

    def test_empty(self):
        table = ColumnTable.empty()
        assert table.row_count == 0
        assert table.to_rows() == []

    def test_explicit_row_count_wins_over_columns(self):
        # A zero-column table still carries cardinality (COUNT(*)-only scans,
        # queries whose only outputs are computed expressions): to_rows emits
        # one empty dict per row for derived columns to land in.
        table = ColumnTable({}, 7)
        assert table.row_count == 7
        assert table.to_rows() == [{}] * 7


class TestTableView:
    def test_column_identity_and_indexed(self):
        base = ColumnTable({"a.k": [1, 2, 3]})
        view = TableView.of_table(base)
        assert view.column("a.k") == [1, 2, 3]
        indexed = view.gather_view([2, 2, 0])
        assert indexed.column("a.k") == [3, 3, 1]
        assert indexed.column("missing") is None

    def test_gather_view_composes_flat(self):
        base = ColumnTable({"a.k": [10, 20, 30, 40]})
        once = TableView.of_table(base).gather_view([3, 1])
        twice = once.gather_view([1, 1, 0])
        assert twice.column("a.k") == [20, 20, 40]
        # composition flattened into direct base indices, not chained views
        table, index = twice.sources[0]
        assert table is base
        assert index == [1, 1, 3]

    def test_merge_and_materialize_subset(self):
        left = TableView.of_table(ColumnTable({"a.k": [1, 2]}))
        right = TableView.of_table(ColumnTable({"b.k": [3, 4], "b.v": [5, 6]}))
        merged = left.merge(right)
        assert merged.column_names() == ["a.k", "b.k", "b.v"]
        materialized = merged.materialize(["b.v", "a.k"])
        assert materialized.columns == {"b.v": [5, 6], "a.k": [1, 2]}

    def test_materialize_unknown_column_fills_none(self):
        view = TableView.of_table(ColumnTable({"a.k": [1, 2]}))
        assert view.materialize(["a.k", "a.zzz"]).columns["a.zzz"] == [None, None]


class TestVectorizedScan:
    def test_filter_via_selection_vector(self):
        query = QueryBuilder("q").scan("t", alias="a").filter("a.k", ComparisonOp.GE, 3).build()
        data = {"t": [{"k": value} for value in range(6)]}
        result = VectorizedExecutor(query, data).execute(scan_plan("a"))
        assert [row["a.k"] for row in result.rows] == [3, 4, 5]

    def test_small_batches_match_single_batch(self):
        query = QueryBuilder("q").scan("t", alias="a").filter("a.k", ComparisonOp.NE, 2).build()
        data = {"t": [{"k": value % 5} for value in range(37)]}
        small = VectorizedExecutor(query, data, batch_size=3).execute(scan_plan("a"))
        large = VectorizedExecutor(query, data, batch_size=4096).execute(scan_plan("a"))
        assert small.rows == large.rows

    def test_missing_filter_column_raises(self):
        query = (
            QueryBuilder("q")
            .scan("t", alias="a")
            .filter("a.no_such_column", ComparisonOp.EQ, 1)
            .build()
        )
        data = {"a": [{"k": 1}]}
        with pytest.raises(ExecutionError) as excinfo:
            VectorizedExecutor(query, data).execute(scan_plan("a"))
        assert "no_such_column" in str(excinfo.value)

    def test_null_filter_value_drops_row(self):
        query = QueryBuilder("q").scan("t", alias="a").filter("a.k", ComparisonOp.EQ, 1).build()
        data = {"t": [{"k": None}, {"k": 1}]}
        result = VectorizedExecutor(query, data).execute(scan_plan("a"))
        assert result.row_count == 1

    def test_missing_table_raises(self):
        query = QueryBuilder("q").scan("missing", alias="m").build()
        with pytest.raises(ExecutionError):
            VectorizedExecutor(query, {}).execute(scan_plan("m"))

    def test_invalid_batch_size_rejected(self):
        query = QueryBuilder("q").scan("t", alias="a").build()
        with pytest.raises(ExecutionError):
            VectorizedExecutor(query, {"t": []}, batch_size=0)


class TestVectorizedJoin:
    def test_hash_join_with_duplicates(self):
        query = (
            QueryBuilder("q")
            .scan("t", alias="a")
            .scan("u", alias="b")
            .join_on("a.k", "b.k")
            .build()
        )
        data = {
            "t": [{"k": 1}, {"k": 2}],
            "u": [{"k": 1}, {"k": 1}, {"k": 3}],
        }
        result = VectorizedExecutor(query, data, batch_size=2).execute(join_plan("a", "b"))
        assert result.row_count == 2
        assert all(row["a.k"] == row["b.k"] == 1 for row in result.rows)

    def test_theta_only_join_nested_loop_fallback(self):
        query = (
            QueryBuilder("q")
            .scan("t", alias="a")
            .scan("t", alias="b")
            .join_on("a.k", "b.k", ComparisonOp.LT)
            .build()
        )
        data = {"a": [{"k": 1}, {"k": 2}, {"k": 3}], "b": [{"k": 1}, {"k": 2}, {"k": 3}]}
        result = VectorizedExecutor(query, data, batch_size=2).execute(join_plan("a", "b"))
        pairs = sorted((row["a.k"], row["b.k"]) for row in result.rows)
        assert pairs == [(1, 2), (1, 3), (2, 3)]

    def test_equi_plus_residual(self):
        query = (
            QueryBuilder("q")
            .scan("t", alias="a")
            .scan("t", alias="b")
            .join_on("a.k", "b.k")
            .join_on("a.v", "b.v", ComparisonOp.LT)
            .build()
        )
        data = {
            "a": [{"k": 1, "v": 1}, {"k": 1, "v": 9}],
            "b": [{"k": 1, "v": 5}],
        }
        result = VectorizedExecutor(query, data).execute(join_plan("a", "b"))
        assert result.row_count == 1
        assert result.rows[0]["a.v"] == 1

    def test_residual_null_drops_pair(self):
        query = (
            QueryBuilder("q")
            .scan("t", alias="a")
            .scan("t", alias="b")
            .join_on("a.k", "b.k")
            .join_on("a.v", "b.v", ComparisonOp.NE)
            .build()
        )
        data = {"a": [{"k": 1, "v": None}], "b": [{"k": 1, "v": 2}]}
        result = VectorizedExecutor(query, data).execute(join_plan("a", "b"))
        assert result.row_count == 0

    def test_empty_side_yields_empty(self):
        query = (
            QueryBuilder("q")
            .scan("t", alias="a")
            .scan("u", alias="b")
            .join_on("a.k", "b.k")
            .build()
        )
        data = {"t": [], "u": [{"k": 1}]}
        result = VectorizedExecutor(query, data).execute(join_plan("a", "b"))
        assert result.rows == []


class TestVectorizedAggregate:
    def aggregate_plan(self, alias="a"):
        return PhysicalPlan(
            PhysicalOperator.HASH_AGGREGATE,
            Expression.leaf(alias),
            children=(scan_plan(alias),),
        )

    def test_count_distinct_matches_row_semantics(self):
        query = (
            QueryBuilder("count_distinct")
            .scan("t", alias="a")
            .group_by("a.g")
            .aggregate(AggregateFunction.COUNT, "a.v", distinct=True)
            .select("a.g")
            .build()
        )
        data = {"t": [{"g": 1, "v": 10}, {"g": 1, "v": 10}, {"g": 1, "v": 20}, {"g": 2, "v": 5}]}
        result = VectorizedExecutor(query, data, batch_size=2).execute(self.aggregate_plan())
        by_group = {row["a.g"]: row for row in result.rows}
        assert by_group[1]["count(distinct a.v)"] == 2
        assert by_group[2]["count(distinct a.v)"] == 1

    def test_aggregates_skip_nulls(self):
        query = (
            QueryBuilder("agg")
            .scan("t", alias="a")
            .aggregate(AggregateFunction.SUM, "a.v")
            .aggregate(AggregateFunction.AVG, "a.v")
            .aggregate(AggregateFunction.COUNT, "a.v")
            .aggregate(AggregateFunction.COUNT)
            .build()
        )
        data = {"t": [{"v": 1}, {"v": None}, {"v": 3}]}
        result = VectorizedExecutor(query, data).execute(self.aggregate_plan())
        row = result.rows[0]
        assert row["sum(a.v)"] == 4
        assert row["avg(a.v)"] == 2
        assert row["count(a.v)"] == 2
        assert row["count(*)"] == 3

    def test_empty_input_without_groups_single_row(self):
        query = (
            QueryBuilder("agg")
            .scan("t", alias="a")
            .aggregate(AggregateFunction.SUM, "a.v")
            .aggregate(AggregateFunction.COUNT)
            .build()
        )
        result = VectorizedExecutor(query, {"t": []}).execute(self.aggregate_plan())
        assert result.rows == [{"sum(a.v)": None, "count(*)": 0}]

    def test_multi_column_grouping(self):
        query = (
            QueryBuilder("agg")
            .scan("t", alias="a")
            .group_by("a.g", "a.h")
            .aggregate(AggregateFunction.MAX, "a.v")
            .select("a.g", "a.h")
            .build()
        )
        data = {
            "t": [
                {"g": 1, "h": 1, "v": 5},
                {"g": 1, "h": 2, "v": 7},
                {"g": 1, "h": 1, "v": 6},
            ]
        }
        result = VectorizedExecutor(query, data, batch_size=2).execute(self.aggregate_plan())
        by_key = {(row["a.g"], row["a.h"]): row["max(a.v)"] for row in result.rows}
        assert by_key == {(1, 1): 6, (1, 2): 7}


class TestProjectionPruning:
    def test_projected_query_prunes_unreferenced_columns(self):
        query = QueryBuilder("q").scan("t", alias="a").select("a.k").build()
        data = {"t": [{"k": 1, "unused": 9}]}
        result = VectorizedExecutor(query, data).execute(scan_plan("a"))
        assert result.rows == [{"a.k": 1}]

    def test_bare_query_keeps_every_column(self):
        query = QueryBuilder("q").scan("t", alias="a").build()
        data = {"t": [{"k": 1, "other": 9}]}
        result = VectorizedExecutor(query, data).execute(scan_plan("a"))
        assert result.rows == [{"a.k": 1, "a.other": 9}]
