"""Randomized differential parity over the scalar-expression grammar.

A seeded generator produces ~200 random boolean expression trees (rendered
as SQL text so the whole stack runs: lexer → parser → binder → optimizer →
engine) over two datasets:

* a mixed-type table with NULLs and strings built through DDL, exercising
  3VL, LIKE, IN, BETWEEN and arithmetic over ragged values;
* the TPC-H workload tables (``customer``, ``orders``), exercising the
  histogram-backed selectivity path the re-optimizer costs.

For every tree both engines must agree on result rows, per-expression
observed cardinalities, and the EXPLAIN rendering of the predicate.
"""

import random

import pytest

import repro
from repro.workloads.tpch import catalog_from_data, generate_tpch_data

# ---------------------------------------------------------------------------
# Random expression generation
# ---------------------------------------------------------------------------

COMPARISONS = ["=", "!=", "<", "<=", ">", ">="]


class ExpressionGenerator:
    """Generates type-correct random boolean SQL expressions over a table.

    *columns* maps column name → ("int" | "float" | "str"); *literals* maps
    column name → a pool of plausible literal values rendered next to it (so
    comparisons actually discriminate instead of always being vacuous).
    """

    def __init__(self, rng, columns, literals, patterns=("a%", "%a", "_l%", "%et%")):
        self.rng = rng
        self.columns = columns
        self.literals = literals
        self.patterns = patterns
        self.numeric_columns = [c for c, t in columns.items() if t in ("int", "float")]
        self.string_columns = [c for c, t in columns.items() if t == "str"]

    def boolean(self, depth):
        if depth <= 0:
            return self.comparison()
        roll = self.rng.random()
        if roll < 0.30:
            return self.comparison()
        if roll < 0.40:
            column = self.rng.choice(self.numeric_columns)
            low, high = sorted(
                (self.literal_for(column), self.literal_for(column)), key=float
            )
            negated = " NOT" if self.rng.random() < 0.3 else ""
            return f"{column}{negated} BETWEEN {low} AND {high}"
        if roll < 0.50:
            column = self.rng.choice(list(self.columns))
            items = ", ".join(
                str(self.literal_for(column)) for _ in range(self.rng.randint(1, 4))
            )
            negated = " NOT" if self.rng.random() < 0.3 else ""
            return f"{column}{negated} IN ({items})"
        if roll < 0.58 and self.string_columns:
            column = self.rng.choice(self.string_columns)
            negated = " NOT" if self.rng.random() < 0.3 else ""
            return f"{column}{negated} LIKE '{self.rng.choice(self.patterns)}'"
        if roll < 0.66:
            column = self.rng.choice(list(self.columns))
            negated = " NOT" if self.rng.random() < 0.5 else ""
            return f"{column} IS{negated} NULL"
        if roll < 0.74:
            return f"NOT ({self.boolean(depth - 1)})"
        connective = "AND" if self.rng.random() < 0.5 else "OR"
        arms = [self.boolean(depth - 1) for _ in range(self.rng.randint(2, 3))]
        return f"({(' ' + connective + ' ').join(arms)})"

    def comparison(self):
        op = self.rng.choice(COMPARISONS)
        if self.string_columns and self.rng.random() < 0.2:
            column = self.rng.choice(self.string_columns)
            return f"{column} {op} {self.literal_for(column)}"
        left = self.numeric_operand()
        column = self.rng.choice(self.numeric_columns)
        right = (
            self.literal_for(column)
            if self.rng.random() < 0.7
            else self.rng.choice(self.numeric_columns)
        )
        if self.rng.random() < 0.15:  # constant-on-the-left shape
            return f"{right} {op} {left}"
        return f"{left} {op} {right}"

    def numeric_operand(self):
        column = self.rng.choice(self.numeric_columns)
        roll = self.rng.random()
        if roll < 0.55:
            return column
        arith = self.rng.choice(["+", "-", "*"])
        if roll < 0.8:
            return f"{column} {arith} {abs(self.literal_for(column))}"
        other = self.rng.choice(self.numeric_columns)
        return f"({column} {arith} {other})"

    def literal_for(self, column):
        value = self.rng.choice(self.literals[column])
        return f"'{value}'" if isinstance(value, str) else value


# ---------------------------------------------------------------------------
# Dataset 1: mixed-type table with NULLs, loaded through DDL
# ---------------------------------------------------------------------------

MIX_COLUMNS = {"a": "int", "b": "int", "x": "float", "s": "str", "t": "str"}
MIX_LITERALS = {
    "a": [0, 3, 7, 12, 25, 40],
    "b": [-5, 0, 4, 9, 18],
    "x": [0.5, 2.5, 7.5, 19.0],
    "s": ["alpha", "beta", "gamma", "delta"],
    "t": ["blue", "green", "teal"],
}


def build_mix_rows(count=240, seed=11):
    rng = random.Random(seed)
    rows = []
    for key in range(count):
        rows.append(
            (
                key,
                rng.choice([None, rng.randint(0, 45)]) if rng.random() < 0.3 else rng.randint(0, 45),
                None if rng.random() < 0.2 else rng.randint(-8, 20),
                None if rng.random() < 0.2 else round(rng.uniform(0.0, 20.0), 2),
                None if rng.random() < 0.25 else rng.choice(MIX_LITERALS["s"]),
                None if rng.random() < 0.25 else rng.choice(MIX_LITERALS["t"]),
            )
        )
    return rows


def sql_value(value):
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return f"'{value}'"
    return str(value)


@pytest.fixture(scope="module")
def mix_connections():
    rows = build_mix_rows()
    values = ", ".join(
        "(" + ", ".join(sql_value(v) for v in row) + ")" for row in rows
    )
    script = (
        "CREATE TABLE mix (k INTEGER, a INTEGER, b INTEGER, x FLOAT, "
        "s TEXT, t TEXT, PRIMARY KEY (k)); "
        f"INSERT INTO mix VALUES {values}; ANALYZE mix"
    )
    connections = {}
    for engine in ("row", "vectorized"):
        connection = repro.connect(engine=engine)
        connection.executescript(script)
        connections[engine] = connection
    return connections


MIX_SEEDS = range(120)


@pytest.mark.parametrize("seed", MIX_SEEDS)
def test_random_tree_parity_mixed_table(seed, mix_connections):
    rng = random.Random(1000 + seed)
    generator = ExpressionGenerator(rng, MIX_COLUMNS, MIX_LITERALS)
    predicate = generator.boolean(depth=3)
    sql = f"SELECT k FROM mix WHERE {predicate} ORDER BY k"
    results = {}
    for engine, connection in mix_connections.items():
        outcome = connection.database.execute(sql)
        results[engine] = outcome
    assert results["row"].rows == results["vectorized"].rows, sql
    assert (
        results["row"].execution.observed_cardinalities
        == results["vectorized"].execution.observed_cardinalities
    ), sql
    # EXPLAIN predicate rendering is identical through both engines' sessions.
    row_plan = mix_connections["row"].database.execute("EXPLAIN " + sql).plan_text
    vec_plan = mix_connections["vectorized"].database.execute("EXPLAIN " + sql).plan_text
    assert row_plan == vec_plan, sql
    assert "filter:" in row_plan, sql


# ---------------------------------------------------------------------------
# Dataset 2: the TPC-H workload tables
# ---------------------------------------------------------------------------

TPCH_COLUMNS = {
    "c_custkey": "int",
    "c_nationkey": "int",
    "c_mktsegment": "int",
    "c_acctbal": "float",
}
TPCH_LITERALS = {
    "c_custkey": [5, 20, 45, 70],
    "c_nationkey": [2, 7, 13, 21],
    "c_mktsegment": [0, 1, 2, 3, 4],
    "c_acctbal": [-500.0, 100.0, 2500.0, 8000.0],
}

ORDERS_COLUMNS = {
    "o_orderkey": "int",
    "o_custkey": "int",
    "o_orderdate": "int",
    "o_totalprice": "float",
}
ORDERS_LITERALS = {
    "o_orderkey": [10, 40, 90, 140],
    "o_custkey": [3, 15, 40, 66],
    "o_orderdate": [200, 900, 1800],
    "o_totalprice": [50_000.0, 150_000.0, 350_000.0],
}


@pytest.fixture(scope="module")
def tpch_sessions():
    dataset = generate_tpch_data(scale_factor=0.0005, seed=5)
    catalog = catalog_from_data(dataset)
    return {
        engine: repro.connect(catalog, dataset, engine=engine).database
        for engine in ("row", "vectorized")
    }


TPCH_SEEDS = range(80)


@pytest.mark.parametrize("seed", TPCH_SEEDS)
def test_random_tree_parity_tpch(seed, tpch_sessions):
    rng = random.Random(5000 + seed)
    if seed % 2 == 0:
        generator = ExpressionGenerator(rng, TPCH_COLUMNS, TPCH_LITERALS)
        sql = (
            "SELECT c_custkey FROM customer "
            f"WHERE {generator.boolean(depth=3)} ORDER BY c_custkey"
        )
    else:
        generator = ExpressionGenerator(rng, ORDERS_COLUMNS, ORDERS_LITERALS)
        sql = (
            "SELECT o_orderkey FROM orders "
            f"WHERE {generator.boolean(depth=3)} ORDER BY o_orderkey"
        )
    results = {
        engine: session.execute(sql) for engine, session in tpch_sessions.items()
    }
    assert results["row"].rows == results["vectorized"].rows, sql
    assert (
        results["row"].execution.observed_cardinalities
        == results["vectorized"].execution.observed_cardinalities
    ), sql
    row_plan = tpch_sessions["row"].execute("EXPLAIN " + sql).plan_text
    vec_plan = tpch_sessions["vectorized"].execute("EXPLAIN " + sql).plan_text
    assert row_plan == vec_plan, sql
