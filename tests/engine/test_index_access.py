"""Index-backed execution: index scans and index-NL joins on both engines.

Covers the physical access paths end to end: EXPLAIN showing the chosen
index, differential parity between seq-scan and index-scan plans across both
engines, real index-NL probing vs the hash-join path, sorted (key-order)
emission, index maintenance under INSERT/COPY, and the no-silent-fallback
contract when a plan references a since-dropped index.
"""

import random

import pytest

import repro
from repro.common.errors import ExecutionError
from repro.engine import make_executor
from repro.engine.executor import PlanExecutor
from repro.engine.vectorized import VectorizedExecutor
from repro.optimizer.search_space import EnumerationOptions
from repro.relational.expressions import ColumnRef, Expression
from repro.relational.plan import PhysicalOperator, PhysicalPlan
from repro.relational.properties import PhysicalProperty

NO_INDEXES = EnumerationOptions(enable_index_scans=False, enable_index_nl=False)

ROWS = 5000


def events_csv(tmp_path_factory, rows=ROWS, seed=7):
    rng = random.Random(seed)
    path = tmp_path_factory.mktemp("index_access") / "events.csv"
    lines = ["id,ts,val,grp"]
    for i in range(rows):
        val = "" if rng.random() < 0.05 else f"{rng.uniform(0, 100):.3f}"
        lines.append(f"{i},{rng.randrange(100000)},{val},{i % 40}")
    path.write_text("\n".join(lines) + "\n")
    return path


DDL = (
    "CREATE TABLE events (id INTEGER, ts INTEGER, val FLOAT, grp INTEGER, "
    "PRIMARY KEY (id));"
    "CREATE INDEX idx_events_ts ON events (ts);"
    "CREATE INDEX idx_events_grp_hash ON events (grp) USING HASH;"
    "CREATE TABLE tags (grp INTEGER, label INTEGER, PRIMARY KEY (grp));"
    "INSERT INTO tags VALUES "
    + ", ".join(f"({grp}, {grp * 11})" for grp in range(40))
)


@pytest.fixture(scope="module")
def databases(tmp_path_factory):
    """engine × enumeration grid over identically DDL-loaded stores."""
    csv_path = events_csv(tmp_path_factory)
    grid = {}
    for engine in ("row", "vectorized"):
        for label, enumeration in (("indexed", None), ("seq", NO_INDEXES)):
            database = repro.connect(engine=engine, enumeration=enumeration).database
            database.execute_script(DDL)
            database.execute(f"COPY events FROM '{csv_path}'")
            database.execute("ANALYZE")
            grid[engine, label] = database
    return grid


QUERIES = {
    "PointPk": "SELECT val FROM events WHERE id = 1234",
    "PointHash": "SELECT id FROM events WHERE grp = 7 ORDER BY id",
    "RangeTs": "SELECT id FROM events WHERE ts BETWEEN 500 AND 2500 ORDER BY id",
    "RangeOpen": "SELECT COUNT(*) FROM events WHERE ts >= 99000",
    "ConstLeft": "SELECT id FROM events WHERE 300 > ts ORDER BY id",
    "ExtraFilter": (
        "SELECT id FROM events WHERE ts BETWEEN 500 AND 9000 AND val < 50.0 "
        "ORDER BY id"
    ),
    "JoinProbe": (
        "SELECT id, label FROM events, tags WHERE events.grp = tags.grp "
        "AND ts < 600 ORDER BY id"
    ),
    "Param": "SELECT id FROM events WHERE ts BETWEEN ? AND ? ORDER BY id",
}
PARAMS = {"Param": (500, 2500)}


@pytest.mark.parametrize("name", sorted(QUERIES))
class TestAccessPathParity:
    """Identical results across row/vectorized engines and seq/index plans."""

    def test_four_way_identical_rows(self, name, databases):
        sql, params = QUERIES[name], PARAMS.get(name)
        results = {
            key: database.execute(sql, params) for key, database in databases.items()
        }
        baseline = results["row", "seq"]
        assert baseline.rows, sql  # queries are chosen to return data
        for key, outcome in results.items():
            assert outcome.rows == baseline.rows, (key, sql)
            assert outcome.rowcount == baseline.rowcount, (key, sql)

    def test_engines_agree_on_operator_cardinalities(self, name, databases):
        sql, params = QUERIES[name], PARAMS.get(name)
        row = databases["row", "indexed"].execute(sql, params)
        vec = databases["vectorized", "indexed"].execute(sql, params)
        assert (
            row.execution.operator_cardinalities == vec.execution.operator_cardinalities
        ), sql
        assert (
            row.execution.observed_cardinalities == vec.execution.observed_cardinalities
        ), sql


class TestExplainAccessPath:
    def test_point_query_uses_pk_index(self, databases):
        plan_text = databases["vectorized", "indexed"].execute(
            "EXPLAIN SELECT val FROM events WHERE id = 1234"
        ).plan_text
        assert "index-scan" in plan_text
        assert "using idx_events_pk" in plan_text

    def test_range_query_uses_ordered_index(self, databases):
        plan_text = databases["row", "indexed"].execute(
            "EXPLAIN SELECT id FROM events WHERE ts BETWEEN 500 AND 2500"
        ).plan_text
        assert "using idx_events_ts" in plan_text

    def test_hash_index_not_used_for_ranges(self, databases):
        """grp only has a hash index: a range over it cannot be index-served."""
        plan_text = databases["row", "indexed"].execute(
            "EXPLAIN SELECT id FROM events WHERE grp > 35"
        ).plan_text
        assert "seq-scan" in plan_text
        assert "using" not in plan_text

    def test_seq_databases_never_index_scan(self, databases):
        plan_text = databases["row", "seq"].execute(
            "EXPLAIN SELECT val FROM events WHERE id = 1234"
        ).plan_text
        assert "index-scan" not in plan_text


class TestMaintenanceUnderMutation:
    def test_insert_visible_through_index_plans(self, databases):
        sql = "SELECT val FROM events WHERE id = ?"
        for (engine, label), database in databases.items():
            database.execute(
                "INSERT INTO events VALUES (990001, 77, 1.25, 3), (990002, 77, NULL, 3)"
            )
        results = {
            key: database.execute(sql, (990001,)) for key, database in databases.items()
        }
        for key, outcome in results.items():
            assert outcome.rows == [{"events.val": 1.25}], key

    def test_copy_maintains_indexes(self, databases, tmp_path):
        extra = tmp_path / "extra.csv"
        extra.write_text("id,ts,val,grp\n990100,123456,9.5,5\n990101,123456,8.5,5\n")
        for database in databases.values():
            database.execute(f"COPY events FROM '{extra}'")
        sql = "SELECT id FROM events WHERE ts = 123456 ORDER BY id"
        results = {key: db.execute(sql) for key, db in databases.items()}
        expected = [{"events.id": 990100}, {"events.id": 990101}]
        for key, outcome in results.items():
            assert outcome.rows == expected, key

    def test_physical_entry_counts_track_appends(self):
        database = repro.connect().database
        database.execute("CREATE TABLE t (a INTEGER, INDEX (a))")
        database.execute("INSERT INTO t VALUES (1), (2), (NULL)")
        index = database.store["t"].usable_index("a", "point")
        assert index.entry_count == 2
        assert index.null_count == 1
        database.execute("INSERT INTO t VALUES (2)")
        # Appends publish a new copy-on-write version; the pre-insert index
        # snapshot above stays frozen while the re-fetched one sees the row.
        assert index.entry_count == 2
        index = database.store["t"].usable_index("a", "point")
        assert index.entry_count == 3
        assert index.lookup(2) == [1, 3]


class TestSortedIndexScan:
    """An INDEX_SCAN delivering SORTED(col) emits key order without a sort."""

    @pytest.fixture()
    def fixture(self):
        database = repro.connect().database
        database.execute_script(
            "CREATE TABLE t (k INTEGER, v INTEGER, INDEX (v));"
            "INSERT INTO t VALUES (1, 30), (2, 10), (3, NULL), (4, 20), (5, 10);"
            "ANALYZE t"
        )
        entry = database.prepare("SELECT k, v FROM t")
        return database, entry.query

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_key_order_with_nulls_last(self, fixture, engine):
        database, query = fixture
        plan = PhysicalPlan(
            PhysicalOperator.INDEX_SCAN,
            Expression.leaf("t"),
            output_property=PhysicalProperty.sorted_on(ColumnRef("t", "v")),
        )
        result = make_executor(engine, query, database.store).execute(plan)
        assert [row["t.v"] for row in result.rows] == [10, 10, 20, 30, None]
        # equal keys keep stored order (2 before 5) and NULLs come last
        assert [row["t.k"] for row in result.rows] == [2, 5, 4, 1, 3]


def _join_query(database):
    return database.prepare(
        "SELECT id, label FROM events, tags WHERE events.grp = tags.grp AND ts < 600"
    ).query


def _join_plans():
    outer = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf("events"))
    indexed_inner = PhysicalPlan(
        PhysicalOperator.INDEX_SCAN,
        Expression.leaf("tags"),
        output_property=PhysicalProperty.indexed_on(ColumnRef("tags", "grp")),
    )
    seq_inner = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf("tags"))
    join_expr = Expression.of("events", "tags")
    inl = PhysicalPlan(
        PhysicalOperator.INDEX_NL_JOIN, join_expr, children=(outer, indexed_inner)
    )
    hash_join = PhysicalPlan(
        PhysicalOperator.HASH_JOIN, join_expr, children=(outer, seq_inner)
    )
    return inl, hash_join


class TestIndexNestedLoopJoin:
    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_probe_matches_hash_join_exactly(self, databases, engine):
        database = databases[engine, "indexed"]
        query = _join_query(database)
        inl, hash_join = _join_plans()
        executor = make_executor(engine, query, database.store)
        inl_result = executor.execute(inl)
        hash_result = make_executor(engine, query, database.store).execute(hash_join)
        assert inl_result.rows == hash_result.rows
        assert inl_result.rows  # non-degenerate
        # the probed inner records the candidates it actually produced
        assert (
            inl_result.observed_cardinalities[Expression.leaf("tags")]
            == inl_result.observed_cardinalities[Expression.of("events", "tags")]
        )

    def test_row_and_vectorized_probe_agree(self, databases):
        inl, _ = _join_plans()
        row_db = databases["row", "indexed"]
        vec_db = databases["vectorized", "indexed"]
        row_result = PlanExecutor(_join_query(row_db), row_db.store).execute(inl)
        vec_result = VectorizedExecutor(_join_query(vec_db), vec_db.store).execute(inl)
        # the vectorized engine prunes to the referenced columns (documented
        # engine difference); compare on the columns it kept
        referenced = set(vec_result.rows[0]) if vec_result.rows else set()
        trimmed = [{name: row[name] for name in referenced} for row in row_result.rows]
        assert trimmed == vec_result.rows
        assert row_result.operator_cardinalities == vec_result.operator_cardinalities


class TestDroppedIndexIsAnError:
    """A plan naming an index the store no longer has must not silently
    fall back to a sequential scan."""

    @pytest.fixture()
    def fixture(self):
        database = repro.connect().database
        database.execute_script(
            "CREATE TABLE t (k INTEGER, v INTEGER, INDEX (v));"
            "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30);"
            "ANALYZE t"
        )
        # Plan against 3 rows with a forced index path via a manual plan.
        query = database.prepare("SELECT k FROM t WHERE v = 20").query
        plan = PhysicalPlan(
            PhysicalOperator.INDEX_SCAN,
            Expression.leaf("t"),
            details=(("index", "idx_t_v"), ("index_column", "t.v")),
        )
        return database, query, plan

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_execution_error_names_the_index(self, fixture, engine):
        database, query, plan = fixture
        # sanity: with the index in place the plan executes
        ok = make_executor(engine, query, database.store).execute(plan)
        assert ok.rows == [{"t.k": 2, "t.v": 20}] or ok.rows == [{"t.k": 2}]
        database.store["t"].drop_index("idx_t_v")
        with pytest.raises(ExecutionError, match="idx_t_v"):
            make_executor(engine, query, database.store).execute(plan)

    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_unresolvable_unnamed_index_scan_errors(self, fixture, engine):
        database, query, _ = fixture
        bare = PhysicalPlan(PhysicalOperator.INDEX_SCAN, Expression.leaf("t"))
        database.store["t"].drop_index("idx_t_v")
        with pytest.raises(ExecutionError, match="index"):
            make_executor(engine, query, database.store).execute(bare)

    def test_database_replans_after_drop_instead_of_erroring(self):
        """Through the Database the catalog version bump forces a re-plan, so
        DROP INDEX never surfaces as an ExecutionError to SQL users."""
        database = repro.connect().database
        database.execute_script(
            "CREATE TABLE t (k INTEGER, v INTEGER, INDEX (v));"
            "INSERT INTO t VALUES (1, 10), (2, 20);"
            "ANALYZE t"
        )
        before = database.execute("SELECT k FROM t WHERE v = 20")
        database.execute("DROP INDEX idx_t_v")
        after = database.execute("SELECT k FROM t WHERE v = 20")
        assert after.rows == before.rows == [{"t.k": 2}]
        assert after.from_cache is False


class TestMultiConjunctNarrowing:
    """Several sargable conjuncts on one column narrow the index window
    together — the shape the cost model priced."""

    @pytest.fixture()
    def database(self):
        database = repro.connect().database
        database.execute("CREATE TABLE r (k INTEGER, INDEX (k))")
        database.execute(
            "INSERT INTO r VALUES " + ", ".join(f"({i})" for i in range(2000))
        )
        database.execute("ANALYZE r")
        return database

    def test_two_range_conjuncts_fetch_the_window(self, database):
        from repro.storage.access import resolve_index_scan_row_ids

        entry = database.prepare("SELECT k FROM r WHERE k >= 100 AND k <= 110")
        stored = database.store["r"]
        scan = next(
            node
            for node in entry.optimization.plan.iter_nodes()
            if node.operator is PhysicalOperator.INDEX_SCAN
        )
        row_ids = resolve_index_scan_row_ids(scan, entry.query, stored)
        assert row_ids == list(range(100, 111))  # 11 candidates, not ~1900

    def test_contradictory_conjuncts_fetch_nothing(self, database):
        from repro.storage.access import resolve_index_scan_row_ids

        entry = database.prepare("SELECT k FROM r WHERE k >= 500 AND k < 400")
        stored = database.store["r"]
        scan = next(
            node
            for node in entry.optimization.plan.iter_nodes()
            if node.operator is PhysicalOperator.INDEX_SCAN
        )
        assert resolve_index_scan_row_ids(scan, entry.query, stored) == []

    def test_results_match_seq_plans(self, database):
        sql = "SELECT k FROM r WHERE k > 100 AND k <= 110 AND k >= 105 ORDER BY k"
        rows = database.execute(sql).rows
        assert rows == [{"r.k": k} for k in range(105, 111)]
        for engine in ("row", "vectorized"):
            assert database.execute(sql, engine=engine).rows == rows
