"""Differential tests: row and vectorized engines must agree on everything.

Every statement in :data:`repro.workloads.sql_queries.PARITY_SQL` (the whole
workload plus ORDER BY/LIMIT, theta-join and cross-theta extras) runs through
both engines; rows, observed cardinalities and EXPLAIN ANALYZE operator
counts must be identical.
"""

import pytest

import repro
from repro.engine.executor import PlanExecutor
from repro.engine.vectorized import VectorizedExecutor
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.sql.session import Session
from repro.workloads.queries import q3s, q5
from repro.workloads.sql_queries import PARITY_SQL, PREPARED_SQL
from repro.workloads.tpch import catalog_from_data, generate_tpch_data

QUERY_NAMES = sorted(PARITY_SQL)


@pytest.fixture(scope="module")
def dataset():
    return generate_tpch_data(scale_factor=0.0005, seed=3)


@pytest.fixture(scope="module")
def data_catalog(dataset):
    return catalog_from_data(dataset)


@pytest.fixture(scope="module")
def row_session(dataset, data_catalog):
    return Session(data_catalog, data=dataset, engine="row")


@pytest.fixture(scope="module")
def vectorized_session(dataset, data_catalog):
    return Session(data_catalog, data=dataset, engine="vectorized")


def row_key(row):
    """Order-insensitive, type-stable identity of one result row."""
    return tuple((name, repr(row[name])) for name in sorted(row))


@pytest.mark.parametrize("name", QUERY_NAMES)
class TestSessionParity:
    def test_identical_sorted_rows(self, name, row_session, vectorized_session):
        row_result = row_session.execute(PARITY_SQL[name])
        vec_result = vectorized_session.execute(PARITY_SQL[name])
        assert sorted(map(row_key, row_result.rows)) == sorted(map(row_key, vec_result.rows))

    def test_identical_row_order(self, name, row_session, vectorized_session):
        """Stronger than sorted equality: both engines emit rows in the same
        order (scans, hash joins and grouping are all order-preserving)."""
        row_result = row_session.execute(PARITY_SQL[name])
        vec_result = vectorized_session.execute(PARITY_SQL[name])
        assert list(map(row_key, row_result.rows)) == list(map(row_key, vec_result.rows))

    def test_identical_observed_cardinalities(self, name, row_session, vectorized_session):
        row_result = row_session.execute(PARITY_SQL[name])
        vec_result = vectorized_session.execute(PARITY_SQL[name])
        assert (
            row_result.execution.observed_cardinalities
            == vec_result.execution.observed_cardinalities
        )

    def test_identical_operator_cardinalities(self, name, row_session, vectorized_session):
        """Same per-operator keys (stable labels) and same counts."""
        row_result = row_session.execute(PARITY_SQL[name])
        vec_result = vectorized_session.execute(PARITY_SQL[name])
        assert (
            row_result.execution.operator_cardinalities
            == vec_result.execution.operator_cardinalities
        )

    def test_explain_analyze_operator_counts(self, name, row_session, vectorized_session):
        sql = "EXPLAIN ANALYZE " + PARITY_SQL[name]
        row_result = row_session.execute(sql)
        vec_result = vectorized_session.execute(sql)
        assert len(row_result.execution.operator_cardinalities) == len(
            vec_result.execution.operator_cardinalities
        )
        # Per-operator plan lines (est and actual rows) line up exactly; only
        # the timing/engine footer may differ between the engines.
        row_lines = [
            line
            for line in row_result.plan_text.splitlines()
            if not line.startswith("execution time:")
        ]
        vec_lines = [
            line
            for line in vec_result.plan_text.splitlines()
            if not line.startswith("execution time:")
        ]
        assert row_lines == vec_lines

    def test_operator_keys_unique_and_complete(self, name, vectorized_session):
        result = vectorized_session.execute(PARITY_SQL[name])
        plan = result.plan
        keys = plan.operator_keys()
        assert len(keys) == len(set(keys)) == plan.node_count
        assert set(result.execution.operator_cardinalities) == set(keys)
        assert set(result.execution.operator_timings) == set(keys)


class TestExecutorLevelParity:
    """Builder queries without projections: the vectorized engine keeps every
    column, so even the raw executor rows match the row engine dict-for-dict."""

    @pytest.mark.parametrize("build", [q3s, q5], ids=["q3s", "q5"])
    def test_raw_rows_match(self, build, dataset, data_catalog):
        query = build()
        plan = DeclarativeOptimizer(query, data_catalog).optimize().plan
        row_result = PlanExecutor(query, dataset).execute(plan)
        vec_result = VectorizedExecutor(query, dataset).execute(plan)
        if query.projections or query.has_aggregation:
            # Declared outputs: vectorized rows carry the referenced columns.
            referenced = set(vec_result.rows[0]) if vec_result.rows else set()
            trimmed = [{name: row[name] for name in referenced} for row in row_result.rows]
            assert trimmed == vec_result.rows
        else:
            assert row_result.rows == vec_result.rows
        assert row_result.observed_cardinalities == vec_result.observed_cardinalities
        assert row_result.operator_cardinalities == vec_result.operator_cardinalities

    def test_engines_tagged(self, dataset, data_catalog):
        query = q3s()
        plan = DeclarativeOptimizer(query, data_catalog).optimize().plan
        assert PlanExecutor(query, dataset).execute(plan).engine == "row"
        assert VectorizedExecutor(query, dataset).execute(plan).engine == "vectorized"


@pytest.fixture(scope="module")
def databases(dataset, data_catalog):
    """Row and vectorized Databases over the same TPC-H rows and catalog."""
    return {
        engine: repro.connect(data_catalog, dataset, engine=engine).database
        for engine in ("row", "vectorized")
    }


@pytest.mark.parametrize("name", sorted(PREPARED_SQL))
class TestPreparedWorkloadParity:
    """The prepared (parameterized) workload statements agree across engines,
    with cached plans re-executed under fresh parameter values."""

    def test_identical_rows_and_cardinalities(self, name, databases):
        sql, params = PREPARED_SQL[name]
        for _ in range(2):  # second round exercises the cached path
            row_result = databases["row"].execute(sql, params)
            vec_result = databases["vectorized"].execute(sql, params)
            assert row_result.rows == vec_result.rows
            assert (
                row_result.execution.observed_cardinalities
                == vec_result.execution.observed_cardinalities
            )
            assert (
                row_result.execution.operator_cardinalities
                == vec_result.execution.operator_cardinalities
            )

    def test_cached_execution_agrees_under_new_parameters(self, name, databases):
        sql, params = PREPARED_SQL[name]
        shifted = tuple(
            value + 1 if isinstance(value, (int, float)) else value for value in params
        )
        databases["row"].execute(sql, params)
        databases["vectorized"].execute(sql, params)
        row_result = databases["row"].execute(sql, shifted)
        vec_result = databases["vectorized"].execute(sql, shifted)
        assert row_result.from_cache and vec_result.from_cache
        assert row_result.rows == vec_result.rows


DDL_SCRIPT = """
CREATE TABLE item (ik INTEGER, ok INTEGER, qty FLOAT, tag STRING,
                   PRIMARY KEY (ik), INDEX (ok));
CREATE TABLE ord (ok INTEGER, day INTEGER, prio INTEGER, PRIMARY KEY (ok));
INSERT INTO item VALUES (1, 10, 5.0, 'a'), (2, 10, 7.5, 'b'), (3, 20, 2.5, 'a'),
                        (4, 30, NULL, 'c'), (5, 20, 9.0, 'b'), (6, 40, 1.0, 'a');
INSERT INTO ord VALUES (10, 100, 0), (20, 200, 1), (30, 300, 0), (40, 400, 1);
ANALYZE
"""

PARAMETRIC_SQL = {
    "FilterParam": ("SELECT ik, tag FROM item WHERE qty > ?", (3.0,)),
    "JoinParam": (
        "SELECT ik, day FROM item, ord WHERE item.ok = ord.ok AND day < $1 AND qty > $2",
        (350, 2.0),
    ),
    "AggregateParam": (
        "SELECT tag, COUNT(*), SUM(qty) FROM item WHERE qty > ? GROUP BY tag ORDER BY tag",
        (0.5,),
    ),
    "CopyAndInsertMix": ("SELECT ik FROM item WHERE qty > ? ORDER BY ik DESC LIMIT 3", (1.5,)),
}


@pytest.fixture(scope="module")
def ddl_connections(tmp_path_factory):
    """Row and vectorized databases loaded identically through SQL DDL + COPY."""
    csv_path = tmp_path_factory.mktemp("parity") / "more_items.csv"
    csv_path.write_text("ik,ok,qty,tag\n7,30,4.0,c\n8,40,,b\n9,10,6.0,a\n")
    connections = {}
    for engine in ("row", "vectorized"):
        connection = repro.connect(engine=engine)
        connection.executescript(DDL_SCRIPT)
        connection.executescript(f"COPY item FROM '{csv_path}'; ANALYZE item")
        connections[engine] = connection
    return connections


@pytest.mark.parametrize("name", sorted(PARAMETRIC_SQL))
class TestDdlLoadedParity:
    """INSERT/COPY-loaded tables + parameterized queries agree across engines."""

    def test_identical_rows_and_order(self, name, ddl_connections):
        sql, params = PARAMETRIC_SQL[name]
        row_rows = ddl_connections["row"].execute(sql, params).fetchall()
        vec_rows = ddl_connections["vectorized"].execute(sql, params).fetchall()
        assert row_rows == vec_rows
        assert row_rows  # the queries are chosen to return data

    def test_identical_observed_cardinalities(self, name, ddl_connections):
        sql, params = PARAMETRIC_SQL[name]
        row_result = ddl_connections["row"].database.execute(sql, params)
        vec_result = ddl_connections["vectorized"].database.execute(sql, params)
        assert (
            row_result.execution.observed_cardinalities
            == vec_result.execution.observed_cardinalities
        )
        assert (
            row_result.execution.operator_cardinalities
            == vec_result.execution.operator_cardinalities
        )


class TestParameterizedReplanParity:
    """One cached plan, many parameter values: both engines agree each time,
    and the vectorized engine's zero-copy ColumnTable scans stay consistent
    with the row engine's materialized view of the same store."""

    @pytest.mark.parametrize("bound", [0.0, 2.6, 5.0, 100.0])
    def test_rebinding_parameters_without_replanning(self, bound, ddl_connections):
        sql = "SELECT ik FROM item WHERE qty > $1 ORDER BY ik"
        row_db = ddl_connections["row"].database
        vec_db = ddl_connections["vectorized"].database
        row_result = row_db.execute(sql, (bound,))
        vec_result = vec_db.execute(sql, (bound,))
        assert row_result.rows == vec_result.rows
        assert (
            row_result.execution.observed_cardinalities
            == vec_result.execution.observed_cardinalities
        )
