"""Differential tests: row and vectorized engines must agree on everything.

Every statement in :data:`repro.workloads.sql_queries.PARITY_SQL` (the whole
workload plus ORDER BY/LIMIT, theta-join and cross-theta extras) runs through
both engines; rows, observed cardinalities and EXPLAIN ANALYZE operator
counts must be identical.
"""

import pytest

from repro.engine.executor import PlanExecutor
from repro.engine.vectorized import VectorizedExecutor
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.sql.session import Session
from repro.workloads.queries import q3s, q5
from repro.workloads.sql_queries import PARITY_SQL
from repro.workloads.tpch import catalog_from_data, generate_tpch_data

QUERY_NAMES = sorted(PARITY_SQL)


@pytest.fixture(scope="module")
def dataset():
    return generate_tpch_data(scale_factor=0.0005, seed=3)


@pytest.fixture(scope="module")
def data_catalog(dataset):
    return catalog_from_data(dataset)


@pytest.fixture(scope="module")
def row_session(dataset, data_catalog):
    return Session(data_catalog, data=dataset, engine="row")


@pytest.fixture(scope="module")
def vectorized_session(dataset, data_catalog):
    return Session(data_catalog, data=dataset, engine="vectorized")


def row_key(row):
    """Order-insensitive, type-stable identity of one result row."""
    return tuple((name, repr(row[name])) for name in sorted(row))


@pytest.mark.parametrize("name", QUERY_NAMES)
class TestSessionParity:
    def test_identical_sorted_rows(self, name, row_session, vectorized_session):
        row_result = row_session.execute(PARITY_SQL[name])
        vec_result = vectorized_session.execute(PARITY_SQL[name])
        assert sorted(map(row_key, row_result.rows)) == sorted(map(row_key, vec_result.rows))

    def test_identical_row_order(self, name, row_session, vectorized_session):
        """Stronger than sorted equality: both engines emit rows in the same
        order (scans, hash joins and grouping are all order-preserving)."""
        row_result = row_session.execute(PARITY_SQL[name])
        vec_result = vectorized_session.execute(PARITY_SQL[name])
        assert list(map(row_key, row_result.rows)) == list(map(row_key, vec_result.rows))

    def test_identical_observed_cardinalities(self, name, row_session, vectorized_session):
        row_result = row_session.execute(PARITY_SQL[name])
        vec_result = vectorized_session.execute(PARITY_SQL[name])
        assert (
            row_result.execution.observed_cardinalities
            == vec_result.execution.observed_cardinalities
        )

    def test_identical_operator_cardinalities(self, name, row_session, vectorized_session):
        """Same per-operator keys (stable labels) and same counts."""
        row_result = row_session.execute(PARITY_SQL[name])
        vec_result = vectorized_session.execute(PARITY_SQL[name])
        assert (
            row_result.execution.operator_cardinalities
            == vec_result.execution.operator_cardinalities
        )

    def test_explain_analyze_operator_counts(self, name, row_session, vectorized_session):
        sql = "EXPLAIN ANALYZE " + PARITY_SQL[name]
        row_result = row_session.execute(sql)
        vec_result = vectorized_session.execute(sql)
        assert len(row_result.execution.operator_cardinalities) == len(
            vec_result.execution.operator_cardinalities
        )
        # Per-operator plan lines (est and actual rows) line up exactly; only
        # the timing/engine footer may differ between the engines.
        row_lines = [
            line
            for line in row_result.plan_text.splitlines()
            if not line.startswith("execution time:")
        ]
        vec_lines = [
            line
            for line in vec_result.plan_text.splitlines()
            if not line.startswith("execution time:")
        ]
        assert row_lines == vec_lines

    def test_operator_keys_unique_and_complete(self, name, vectorized_session):
        result = vectorized_session.execute(PARITY_SQL[name])
        plan = result.plan
        keys = plan.operator_keys()
        assert len(keys) == len(set(keys)) == plan.node_count
        assert set(result.execution.operator_cardinalities) == set(keys)
        assert set(result.execution.operator_timings) == set(keys)


class TestExecutorLevelParity:
    """Builder queries without projections: the vectorized engine keeps every
    column, so even the raw executor rows match the row engine dict-for-dict."""

    @pytest.mark.parametrize("build", [q3s, q5], ids=["q3s", "q5"])
    def test_raw_rows_match(self, build, dataset, data_catalog):
        query = build()
        plan = DeclarativeOptimizer(query, data_catalog).optimize().plan
        row_result = PlanExecutor(query, dataset).execute(plan)
        vec_result = VectorizedExecutor(query, dataset).execute(plan)
        if query.projections or query.has_aggregation:
            # Declared outputs: vectorized rows carry the referenced columns.
            referenced = set(vec_result.rows[0]) if vec_result.rows else set()
            trimmed = [{name: row[name] for name in referenced} for row in row_result.rows]
            assert trimmed == vec_result.rows
        else:
            assert row_result.rows == vec_result.rows
        assert row_result.observed_cardinalities == vec_result.observed_cardinalities
        assert row_result.operator_cardinalities == vec_result.operator_cardinalities

    def test_engines_tagged(self, dataset, data_catalog):
        query = q3s()
        plan = DeclarativeOptimizer(query, data_catalog).optimize().plan
        assert PlanExecutor(query, dataset).execute(plan).engine == "row"
        assert VectorizedExecutor(query, dataset).execute(plan).engine == "vectorized"
