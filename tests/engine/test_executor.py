"""Tests for the in-memory plan executor."""

import pytest

from repro.common.errors import ExecutionError
from repro.engine.executor import PlanExecutor
from repro.optimizer.baselines.volcano import VolcanoOptimizer
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.relational.expressions import Expression
from repro.relational.predicates import ComparisonOp
from repro.relational.query import AggregateFunction, QueryBuilder
from repro.workloads.queries import q3s, q5
from repro.workloads.tpch import catalog_from_data, generate_tpch_data


@pytest.fixture(scope="module")
def dataset():
    return generate_tpch_data(scale_factor=0.0005, seed=3)


@pytest.fixture(scope="module")
def data_catalog(dataset):
    return catalog_from_data(dataset)


def brute_force_q3s(data):
    """Reference result for Q3S computed with naive nested loops."""
    rows = []
    for customer in data["customer"]:
        if customer["c_mktsegment"] != 2:
            continue
        for order in data["orders"]:
            if order["o_custkey"] != customer["c_custkey"]:
                continue
            if not order["o_orderdate"] < 1_168:
                continue
            for line in data["lineitem"]:
                if line["l_orderkey"] != order["o_orderkey"]:
                    continue
                if line["l_shipdate"] > 1_168:
                    rows.append((line["l_orderkey"], order["o_orderdate"]))
    return rows


class TestCorrectnessAgainstBruteForce:
    def test_q3s_result_matches_nested_loops(self, dataset, data_catalog):
        query = q3s()
        plan = DeclarativeOptimizer(query, data_catalog).optimize().plan
        result = PlanExecutor(query, dataset).execute(plan)
        expected = brute_force_q3s(dataset)
        got = [(row["lineitem.l_orderkey"], row["orders.o_orderdate"]) for row in result.rows]
        assert sorted(got) == sorted(expected)

    def test_different_plans_same_result(self, dataset, data_catalog):
        """Any two valid physical plans for the same query agree on output."""
        query = q3s()
        plan_a = DeclarativeOptimizer(query, data_catalog).optimize().plan
        plan_b = VolcanoOptimizer(query, data_catalog).optimize().plan
        rows_a = PlanExecutor(query, dataset).execute(plan_a).rows
        rows_b = PlanExecutor(query, dataset).execute(plan_b).rows

        def key(row):
            return (row["lineitem.l_orderkey"], row["orders.o_orderdate"])

        assert sorted(map(key, rows_a)) == sorted(map(key, rows_b))


class TestObservedCardinalities:
    def test_every_plan_expression_observed(self, dataset, data_catalog):
        query = q3s()
        plan = DeclarativeOptimizer(query, data_catalog).optimize().plan
        result = PlanExecutor(query, dataset).execute(plan)
        for node in plan.iter_nodes():
            assert node.expression in result.observed_cardinalities

    def test_observed_root_matches_row_count(self, dataset, data_catalog):
        query = q3s()
        plan = DeclarativeOptimizer(query, data_catalog).optimize().plan
        result = PlanExecutor(query, dataset).execute(plan)
        assert result.observed_cardinalities[plan.expression] == result.row_count

    def test_elapsed_time_recorded(self, dataset, data_catalog):
        query = q3s()
        plan = DeclarativeOptimizer(query, data_catalog).optimize().plan
        result = PlanExecutor(query, dataset).execute(plan)
        assert result.elapsed_seconds > 0
        assert result.operator_timings


class TestOperatorKeys:
    def test_keys_are_unique_per_node(self, dataset, data_catalog):
        """Same-label operators (aggregate over its child's expression, deep
        self-join shapes) stay apart thanks to the pre-order #n suffix."""
        query = q5()
        plan = DeclarativeOptimizer(query, data_catalog).optimize().plan
        keys = plan.operator_keys()
        assert len(keys) == len(set(keys)) == plan.node_count
        result = PlanExecutor(query, dataset).execute(plan)
        assert set(result.operator_cardinalities) == set(keys)
        assert set(result.operator_timings) == set(keys)

    def test_self_join_scan_keys_disambiguated(self):
        from repro.relational.plan import PhysicalOperator, PhysicalPlan

        query = (
            QueryBuilder("q")
            .scan("stream", alias="r1")
            .scan("stream", alias="r2")
            .join_on("r1.k", "r2.k")
            .build()
        )
        scan1 = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf("r1"))
        scan2 = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf("r2"))
        plan = PhysicalPlan(
            PhysicalOperator.HASH_JOIN, Expression.of("r1", "r2"), children=(scan1, scan2)
        )
        data = {"r1": [{"k": 1}], "r2": [{"k": 1}, {"k": 2}]}
        result = PlanExecutor(query, data).execute(plan)
        assert sorted(result.operator_cardinalities) == [
            "pipelined-hash-join (r1 r2)#0",
            "seq-scan (r1)#1",
            "seq-scan (r2)#2",
        ]
        # Per-node counts: the r2 scan's 2 rows don't clobber the r1 scan's 1.
        assert result.operator_cardinalities["seq-scan (r1)#1"] == 1
        assert result.operator_cardinalities["seq-scan (r2)#2"] == 2


class TestAggregation:
    def test_group_by_sum(self, dataset, data_catalog):
        query = q5()
        plan = DeclarativeOptimizer(query, data_catalog).optimize().plan
        result = PlanExecutor(query, dataset).execute(plan)
        # One output row per nation name present in the join result.
        names = {row["nation.n_name"] for row in result.rows}
        assert len(names) == len(result.rows)

    def test_count_distinct(self):
        query = (
            QueryBuilder("count_distinct")
            .scan("t", alias="a")
            .group_by("a.g")
            .aggregate(AggregateFunction.COUNT, "a.v", distinct=True)
            .select("a.g")
            .build()
        )
        data = {"t": [{"g": 1, "v": 10}, {"g": 1, "v": 10}, {"g": 1, "v": 20}, {"g": 2, "v": 5}]}
        from repro.relational.plan import PhysicalOperator, PhysicalPlan

        scan = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf("a"))
        plan = PhysicalPlan(PhysicalOperator.HASH_AGGREGATE, Expression.leaf("a"), children=(scan,))
        result = PlanExecutor(query, data).execute(plan)
        by_group = {row["a.g"]: row for row in result.rows}
        assert by_group[1]["count(distinct a.v)"] == 2
        assert by_group[2]["count(distinct a.v)"] == 1

    def test_aggregate_without_groups_single_row(self):
        query = (
            QueryBuilder("total")
            .scan("t", alias="a")
            .aggregate(AggregateFunction.SUM, "a.v")
            .build()
        )
        from repro.relational.plan import PhysicalOperator, PhysicalPlan

        scan = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf("a"))
        plan = PhysicalPlan(PhysicalOperator.HASH_AGGREGATE, Expression.leaf("a"), children=(scan,))
        data = {"t": [{"v": 1}, {"v": 2}, {"v": 3}]}
        result = PlanExecutor(query, data).execute(plan)
        assert len(result.rows) == 1
        assert result.rows[0]["sum(a.v)"] == 6


class TestErrorsAndEdgeCases:
    def test_missing_table_raises(self):
        query = QueryBuilder("q").scan("missing", alias="m").build()
        from repro.relational.plan import PhysicalOperator, PhysicalPlan

        plan = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf("m"))
        with pytest.raises(ExecutionError):
            PlanExecutor(query, {}).execute(plan)

    def test_alias_keyed_data_preferred(self):
        query = (
            QueryBuilder("q")
            .scan("stream", alias="r1")
            .scan("stream", alias="r2")
            .join_on("r1.k", "r2.k")
            .build()
        )
        from repro.relational.plan import PhysicalOperator, PhysicalPlan

        scan1 = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf("r1"))
        scan2 = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf("r2"))
        plan = PhysicalPlan(
            PhysicalOperator.HASH_JOIN, Expression.of("r1", "r2"), children=(scan1, scan2)
        )
        data = {"r1": [{"k": 1}], "r2": [{"k": 1}, {"k": 2}]}
        result = PlanExecutor(query, data).execute(plan)
        assert result.row_count == 1

    def test_filter_on_unknown_column_raises(self):
        """A predicate naming a column absent from the data must not silently
        drop every row — it raises an ExecutionError naming the column."""
        query = (
            QueryBuilder("q")
            .scan("t", alias="a")
            .filter("a.no_such_column", ComparisonOp.EQ, 1)
            .build()
        )
        from repro.relational.plan import PhysicalOperator, PhysicalPlan

        plan = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf("a"))
        data = {"a": [{"k": 1}, {"k": 2}]}
        with pytest.raises(ExecutionError) as excinfo:
            PlanExecutor(query, data).execute(plan)
        assert "no_such_column" in str(excinfo.value)
        assert "'a'" in str(excinfo.value)

    def test_filter_on_null_value_still_drops_row(self):
        """A present-but-NULL value is dropped (SQL semantics), not an error."""
        query = QueryBuilder("q").scan("t", alias="a").filter("a.k", ComparisonOp.EQ, 1).build()
        from repro.relational.plan import PhysicalOperator, PhysicalPlan

        plan = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf("a"))
        data = {"a": [{"k": None}, {"k": 1}]}
        result = PlanExecutor(query, data).execute(plan)
        assert result.row_count == 1

    def test_non_equi_join_residual_filter(self):
        query = (
            QueryBuilder("q")
            .scan("t", alias="a")
            .scan("t", alias="b")
            .join_on("a.k", "b.k")
            .join_on("a.v", "b.v", ComparisonOp.LT)
            .build()
        )
        from repro.relational.plan import PhysicalOperator, PhysicalPlan

        scan_a = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf("a"))
        scan_b = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf("b"))
        plan = PhysicalPlan(
            PhysicalOperator.HASH_JOIN, Expression.of("a", "b"), children=(scan_a, scan_b)
        )
        data = {
            "a": [{"k": 1, "v": 1}, {"k": 1, "v": 9}],
            "b": [{"k": 1, "v": 5}],
        }
        result = PlanExecutor(query, data).execute(plan)
        # only the a-row with v=1 satisfies a.v < b.v... but note both rows share
        # the same qualified keys after the join: the filter applies per joined row.
        assert result.row_count == 1
