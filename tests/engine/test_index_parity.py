"""Differential parity over index-backed physical tables.

The whole ``PARITY_SQL`` workload re-runs against TPC-H stores adopted into
:class:`~repro.storage.table.StoredTable` (every catalog index built
physically, plus an extra hash index per table so adoption is exercised
through public ``CREATE INDEX``), compared four ways — row/vectorized engine
× physical-index/plain store — and again after INSERT/COPY mutate the
indexes.  A seeded stream of random expression trees does the same over a
mixed-NULL DDL table whose columns are indexed, additionally comparing
index-enabled against index-disabled plan enumeration.
"""

import random

import pytest
from test_expression_parity import (
    MIX_COLUMNS,
    MIX_LITERALS,
    ExpressionGenerator,
    build_mix_rows,
    sql_value,
)

import repro
from repro.optimizer.search_space import EnumerationOptions
from repro.storage.table import StoredTable
from repro.workloads.sql_queries import PARITY_SQL
from repro.workloads.tpch import catalog_from_data, generate_tpch_data

NO_INDEXES = EnumerationOptions(enable_index_scans=False, enable_index_nl=False)

#: one join-key per TPC-H table; the extra hash index triggers physical
#: adoption of the whole store through the public CREATE INDEX path.
ADOPTION_COLUMNS = {
    "region": "r_regionkey",
    "nation": "n_nationkey",
    "supplier": "s_suppkey",
    "customer": "c_custkey",
    "part": "p_partkey",
    "partsupp": "ps_partkey",
    "orders": "o_custkey",
    "lineitem": "l_orderkey",
}


def row_key(row):
    """Order-insensitive row identity, float-rounding tolerant.

    Different access paths legitimately produce different plan shapes, so
    float aggregates accumulate in different orders; round to 6 decimals to
    compare values rather than summation order.
    """
    normalized = {
        name: round(value, 6) if isinstance(value, float) else value
        for name, value in row.items()
    }
    return tuple((name, repr(normalized[name])) for name in sorted(normalized))


@pytest.fixture(scope="module")
def databases():
    """engine × (physical, plain) over identical TPC-H rows."""
    dataset = generate_tpch_data(scale_factor=0.0005, seed=3)
    grid = {}
    for engine in ("row", "vectorized"):
        for label in ("physical", "plain"):
            # each database needs its own catalog: CREATE INDEX mutates it
            database = repro.connect(
                catalog_from_data(dataset),
                {name: list(rows) for name, rows in dataset.items()},
                engine=engine,
            ).database
            if label == "physical":
                for table, column in ADOPTION_COLUMNS.items():
                    database.execute(
                        f"CREATE INDEX adopt_{table} ON {table} ({column}) USING HASH"
                    )
            grid[engine, label] = database
    return grid


@pytest.fixture(scope="module")
def parity_results(databases):
    return {
        (name,) + key: database.execute(PARITY_SQL[name])
        for name in sorted(PARITY_SQL)
        for key, database in databases.items()
    }


@pytest.mark.parametrize("name", sorted(PARITY_SQL))
class TestWorkloadParityOverPhysicalStores:
    def test_all_tables_adopted(self, name, databases):
        database = databases["row", "physical"]
        for table in ADOPTION_COLUMNS:
            assert isinstance(database.store[table], StoredTable)

    def test_four_way_identical_sorted_rows(self, name, parity_results, databases):
        baseline = parity_results[(name, "row", "plain")]
        expected = sorted(map(row_key, baseline.rows))
        for key, database in databases.items():
            outcome = parity_results[(name,) + key]
            assert sorted(map(row_key, outcome.rows)) == expected, (name, key)
            assert outcome.rowcount == baseline.rowcount, (name, key)

    def test_engines_agree_in_order_on_physical_stores(self, name, parity_results):
        row_result = parity_results[(name, "row", "physical")]
        vec_result = parity_results[(name, "vectorized", "physical")]
        assert list(map(row_key, row_result.rows)) == list(map(row_key, vec_result.rows))
        assert (
            row_result.execution.operator_cardinalities
            == vec_result.execution.operator_cardinalities
        )


MUTATION_QUERIES = [
    "SELECT c_custkey, c_acctbal FROM customer WHERE c_mktsegment = 1 ORDER BY c_custkey",
    "SELECT n_name, COUNT(*) FROM nation, customer WHERE n_nationkey = c_nationkey "
    "GROUP BY n_name ORDER BY n_name",
]


class TestParityAfterMutation:
    def test_insert_and_copy_keep_parity(self, databases, tmp_path):
        csv_path = tmp_path / "more_customers.csv"
        # categorical/name attributes are integer-encoded in this schema
        csv_path.write_text(
            "c_custkey,c_nationkey,c_mktsegment,c_name,c_acctbal\n"
            "900001,3,1,900001,123.45\n"
            "900002,7,1,900002,\n"
        )
        before = {
            key: database.execute(MUTATION_QUERIES[0]).rowcount
            for key, database in databases.items()
        }
        for database in databases.values():
            database.execute(
                "INSERT INTO customer VALUES (900000, 5, 1, 900000, 50.0)"
            )
            database.execute(f"COPY customer FROM '{csv_path}'")
        for sql in MUTATION_QUERIES:
            results = {key: db.execute(sql) for key, db in databases.items()}
            expected = sorted(map(row_key, results["row", "plain"].rows))
            for key, outcome in results.items():
                assert sorted(map(row_key, outcome.rows)) == expected, (sql, key)
        after = databases["row", "physical"].execute(MUTATION_QUERIES[0]).rowcount
        assert after == before["row", "physical"] + 3  # all three new rows visible

    def test_physical_index_tracks_mutations(self, databases):
        stored = databases["vectorized", "physical"].store["customer"]
        adopt = stored.index("adopt_customer")
        assert adopt.lookup(900000) != []
        assert stored.usable_index("c_custkey", "range").lookup(900001) != []


# ---------------------------------------------------------------------------
# Randomized expression trees over an indexed mixed-NULL table
# ---------------------------------------------------------------------------

MIX_DDL_INDEXES = (
    "CREATE INDEX idx_mix_a ON mix (a);"
    "CREATE INDEX idx_mix_x ON mix (x);"
    "CREATE INDEX idx_mix_s ON mix (s) USING HASH"
)


@pytest.fixture(scope="module")
def mix_grid():
    rows = build_mix_rows(count=240, seed=11)
    values = ", ".join("(" + ", ".join(sql_value(v) for v in row) + ")" for row in rows)
    script = (
        "CREATE TABLE mix (k INTEGER, a INTEGER, b INTEGER, x FLOAT, "
        "s TEXT, t TEXT, PRIMARY KEY (k)); "
        f"INSERT INTO mix VALUES {values}; "
        f"{MIX_DDL_INDEXES}; ANALYZE mix"
    )
    grid = {}
    for engine in ("row", "vectorized"):
        for label, enumeration in (("indexed", None), ("seq", NO_INDEXES)):
            connection = repro.connect(engine=engine, enumeration=enumeration)
            connection.executescript(script)
            grid[engine, label] = connection.database
    return grid


@pytest.mark.parametrize("seed", range(60))
def test_random_tree_parity_indexed_mix(seed, mix_grid):
    rng = random.Random(9000 + seed)
    generator = ExpressionGenerator(rng, MIX_COLUMNS, MIX_LITERALS)
    sql = f"SELECT k FROM mix WHERE {generator.boolean(depth=3)} ORDER BY k"
    results = {key: database.execute(sql) for key, database in mix_grid.items()}
    baseline = results["row", "seq"]
    for key, outcome in results.items():
        assert outcome.rows == baseline.rows, (sql, key)
        assert outcome.rowcount == baseline.rowcount, (sql, key)


def test_random_trees_still_agree_after_insert(mix_grid):
    for database in mix_grid.values():
        database.execute(
            "INSERT INTO mix VALUES (9001, 12, 4, 2.5, 'alpha', NULL), "
            "(9002, NULL, 0, 19.0, NULL, 'teal')"
        )
    rng = random.Random(777)
    generator = ExpressionGenerator(rng, MIX_COLUMNS, MIX_LITERALS)
    for _ in range(12):
        sql = f"SELECT k FROM mix WHERE {generator.boolean(depth=3)} ORDER BY k"
        results = {key: database.execute(sql) for key, database in mix_grid.items()}
        baseline = results["row", "seq"]
        for key, outcome in results.items():
            assert outcome.rows == baseline.rows, (sql, key)
