"""Tests for the individual pruning strategies and their combinations (§3)."""

import pytest

from repro.optimizer.declarative import DeclarativeOptimizer
from repro.optimizer.tables import PruningConfig
from repro.workloads.queries import q3s, q5s, q10
from repro.workloads.tpch import tpch_catalog

ALL_CONFIGS = [
    PruningConfig.none(),
    PruningConfig.evita_raced(),
    PruningConfig.aggsel(),
    PruningConfig.aggsel_refcount(),
    PruningConfig.aggsel_bounding(),
    PruningConfig.full(),
]


@pytest.fixture(scope="module")
def catalog_small():
    return tpch_catalog(0.01)


class TestCorrectnessUnderAllConfigs:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.label())
    @pytest.mark.parametrize("make_query", [q3s, q10])
    def test_optimal_cost_independent_of_pruning(self, catalog_small, config, make_query):
        """Pruning must never change the chosen plan's cost (Propositions 5-7)."""
        query = make_query()
        reference = DeclarativeOptimizer(
            query, catalog_small, pruning=PruningConfig.none()
        ).optimize()
        result = DeclarativeOptimizer(query, catalog_small, pruning=config).optimize()
        assert result.cost == pytest.approx(reference.cost, rel=1e-6)


class TestPruningPower:
    def test_each_technique_adds_pruning(self, catalog_small):
        """Figure 7's qualitative claim: RefCount and Branch&Bounding each add
        pruning power on top of aggregate selection."""
        query = q5s()
        aggsel = DeclarativeOptimizer(
            query, catalog_small, pruning=PruningConfig.aggsel()
        ).optimize()
        with_refcount = DeclarativeOptimizer(
            query, catalog_small, pruning=PruningConfig.aggsel_refcount()
        ).optimize()
        full = DeclarativeOptimizer(query, catalog_small, pruning=PruningConfig.full()).optimize()
        assert with_refcount.metrics.or_nodes_pruned >= aggsel.metrics.or_nodes_pruned
        assert full.metrics.and_nodes_pruned >= aggsel.metrics.and_nodes_pruned

    def test_no_pruning_keeps_every_alternative(self, catalog_small):
        result = DeclarativeOptimizer(q3s(), catalog_small, pruning=PruningConfig.none()).optimize()
        assert result.metrics.and_nodes_pruned == 0
        assert result.metrics.pruning_ratio_and == 0.0

    def test_full_pruning_beats_evita_raced(self, catalog_small):
        """Figure 4(b)/(c): the full strategy prunes plan-table entries that
        Evita Raced-style pruning never touches, and at least as many
        alternatives."""
        query = q5s()
        evita = DeclarativeOptimizer(
            query, catalog_small, pruning=PruningConfig.evita_raced()
        ).optimize()
        full = DeclarativeOptimizer(query, catalog_small, pruning=PruningConfig.full()).optimize()
        assert evita.metrics.or_nodes_pruned == 0
        assert full.metrics.or_nodes_pruned > 0
        assert full.metrics.pruning_ratio_and >= evita.metrics.pruning_ratio_and

    def test_pruning_ratio_reported_per_query(self, catalog_small):
        for make_query in (q3s, q5s, q10):
            metrics = DeclarativeOptimizer(
                make_query(), catalog_small, pruning=PruningConfig.full()
            ).optimize().metrics
            assert 0.0 < metrics.pruning_ratio_and < 1.0
            assert 0.0 <= metrics.pruning_ratio_or < 1.0
