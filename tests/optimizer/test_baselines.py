"""Tests for the Volcano-style and System-R-style baseline optimizers."""

import pytest

from repro.optimizer.baselines.system_r import SystemROptimizer
from repro.optimizer.baselines.volcano import VolcanoOptimizer
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.relational.plan import PhysicalOperator
from repro.workloads.queries import q3s, q5, q5s, q10
from repro.workloads.tpch import tpch_catalog


@pytest.fixture(scope="module")
def catalog_small():
    return tpch_catalog(0.01)


class TestVolcano:
    def test_produces_complete_plan(self, catalog_small):
        result = VolcanoOptimizer(q3s(), catalog_small).optimize()
        assert sorted(result.plan.leaf_order()) == ["customer", "lineitem", "orders"]
        assert result.optimizer == "volcano"

    def test_aggregate_root_for_aggregation_query(self, catalog_small):
        result = VolcanoOptimizer(q5(), catalog_small).optimize()
        assert result.plan.operator is PhysicalOperator.HASH_AGGREGATE

    def test_branch_and_bound_prunes_alternatives(self, catalog_small):
        result = VolcanoOptimizer(q5s(), catalog_small).optimize()
        assert result.metrics.and_nodes_pruned > 0

    def test_plan_totals_consistent(self, catalog_small):
        result = VolcanoOptimizer(q3s(), catalog_small).optimize()
        root = result.plan
        assert root.total_cost == pytest.approx(
            root.local_cost + sum(child.total_cost for child in root.children), rel=1e-6
        )

    def test_reoptimize_reruns_search(self, catalog_small):
        optimizer = VolcanoOptimizer(q3s(), catalog_small)
        baseline = optimizer.optimize()
        optimizer.update_scan_cost("lineitem", 10.0)
        rerun = optimizer.reoptimize()
        assert rerun.cost > baseline.cost


class TestSystemR:
    def test_produces_complete_plan(self, catalog_small):
        result = SystemROptimizer(q3s(), catalog_small).optimize()
        assert sorted(result.plan.leaf_order()) == ["customer", "lineitem", "orders"]
        assert result.optimizer == "system-r"

    def test_never_prunes_plan_table_entries(self, catalog_small):
        result = SystemROptimizer(q5s(), catalog_small).optimize()
        assert result.metrics.or_nodes_pruned == 0

    def test_dp_table_covers_connected_subexpressions(self, catalog_small):
        optimizer = SystemROptimizer(q5s(), catalog_small)
        optimizer.optimize()
        expressions = optimizer._connected_expressions(sorted(q5s().aliases))
        # region-nation-customer-orders-lineitem-supplier chain + s-n edge:
        # every listed expression must be connected.
        for expression in expressions:
            assert q5s().is_connected(expression.aliases)

    def test_reoptimize_reruns_dp(self, catalog_small):
        optimizer = SystemROptimizer(q3s(), catalog_small)
        baseline = optimizer.optimize()
        optimizer.update_scan_cost("lineitem", 10.0)
        rerun = optimizer.reoptimize()
        assert rerun.cost > baseline.cost


class TestOptimizerAgreement:
    """All optimizers share cost model and enumeration, so they must agree on
    the optimal cost (the paper's correctness baseline)."""

    @pytest.mark.parametrize("make_query", [q3s, q5s, q5, q10])
    def test_same_optimal_cost(self, catalog_small, make_query):
        query = make_query()
        declarative = DeclarativeOptimizer(query, catalog_small).optimize()
        volcano = VolcanoOptimizer(query, catalog_small).optimize()
        system_r = SystemROptimizer(query, catalog_small).optimize()
        assert declarative.cost == pytest.approx(volcano.cost, rel=1e-6)
        assert declarative.cost == pytest.approx(system_r.cost, rel=1e-6)

    @pytest.mark.parametrize("make_query", [q3s, q5s])
    def test_same_join_structure_cost_under_overrides(self, catalog_small, make_query):
        """After a statistics change, a fresh run of every optimizer still
        agrees (sanity for the incremental-vs-from-scratch comparisons)."""
        query = make_query()
        declarative = DeclarativeOptimizer(query, catalog_small)
        declarative.update_scan_cost("orders", 5.0)
        volcano = VolcanoOptimizer(query, catalog_small)
        volcano.update_scan_cost("orders", 5.0)
        assert declarative.optimize().cost == pytest.approx(volcano.optimize().cost, rel=1e-6)
