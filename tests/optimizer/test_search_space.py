"""Tests for search-space enumeration (Fn_split)."""

import pytest

from repro.optimizer.search_space import EnumerationOptions, SearchSpaceEnumerator
from repro.optimizer.tables import OrKey
from repro.relational.expressions import ColumnRef, Expression
from repro.relational.plan import PhysicalOperator
from repro.relational.properties import ANY_PROPERTY, PhysicalProperty
from repro.workloads.queries import q3s, q5s
from repro.workloads.tpch import tpch_catalog


@pytest.fixture(scope="module")
def enumerator():
    return SearchSpaceEnumerator(q3s(), tpch_catalog(0.01))


class TestLeafEnumeration:
    def test_any_property_has_seq_scan(self, enumerator):
        entries = enumerator.expand(OrKey(Expression.leaf("orders"), ANY_PROPERTY))
        operators = {entry.physical_op for entry in entries}
        assert PhysicalOperator.SEQ_SCAN in operators

    def test_filtered_indexed_column_offers_index_scan(self, enumerator):
        # customer has a filter on c_mktsegment (not indexed) -> no index scan;
        # orders has a filter on o_orderdate (not indexed) -> no index scan.
        entries = enumerator.expand(OrKey(Expression.leaf("customer"), ANY_PROPERTY))
        operators = {entry.physical_op for entry in entries}
        assert PhysicalOperator.INDEX_SCAN not in operators

    def test_sorted_property_offers_sorted_scan(self, enumerator):
        prop = PhysicalProperty.sorted_on(ColumnRef("orders", "o_custkey"))
        entries = enumerator.expand(OrKey(Expression.leaf("orders"), prop))
        operators = {entry.physical_op for entry in entries}
        assert PhysicalOperator.SORTED_SCAN in operators

    def test_sorted_on_indexed_column_offers_index_scan(self, enumerator):
        prop = PhysicalProperty.sorted_on(ColumnRef("orders", "o_orderkey"))
        entries = enumerator.expand(OrKey(Expression.leaf("orders"), prop))
        operators = {entry.physical_op for entry in entries}
        assert PhysicalOperator.INDEX_SCAN in operators

    def test_indexed_property_requires_index(self, enumerator):
        indexed = PhysicalProperty.indexed_on(ColumnRef("lineitem", "l_orderkey"))
        entries = enumerator.expand(OrKey(Expression.leaf("lineitem"), indexed))
        assert len(entries) == 1
        assert entries[0].physical_op is PhysicalOperator.INDEX_SCAN
        missing = PhysicalProperty.indexed_on(ColumnRef("customer", "c_mktsegment"))
        assert enumerator.expand(OrKey(Expression.leaf("customer"), missing)) == []


class TestJoinEnumeration:
    def test_connected_partitions_only(self, enumerator):
        entries = enumerator.expand(
            OrKey(Expression.of("customer", "orders", "lineitem"), ANY_PROPERTY)
        )
        for entry in entries:
            if entry.is_binary:
                # customer-lineitem is not directly connected, so no partition
                # should put them alone on one side against orders... actually
                # ({customer,lineitem},{orders}) has connecting predicates but
                # the left side is internally disconnected and must be skipped.
                left_aliases = entry.left.expression.aliases
                assert left_aliases != frozenset({"customer", "lineitem"})
                assert entry.right.expression.aliases != frozenset({"customer", "lineitem"})

    def test_hash_join_both_orientations(self, enumerator):
        entries = enumerator.expand(OrKey(Expression.of("customer", "orders"), ANY_PROPERTY))
        hash_joins = [e for e in entries if e.physical_op is PhysicalOperator.HASH_JOIN]
        orientations = {(e.left.expression.name, e.right.expression.name) for e in hash_joins}
        assert ("(customer)", "(orders)") in orientations
        assert ("(orders)", "(customer)") in orientations

    def test_sort_merge_requires_sorted_children(self, enumerator):
        entries = enumerator.expand(OrKey(Expression.of("customer", "orders"), ANY_PROPERTY))
        merges = [e for e in entries if e.physical_op is PhysicalOperator.SORT_MERGE_JOIN]
        assert merges
        for entry in merges:
            assert not entry.left.prop.is_any
            assert not entry.right.prop.is_any

    def test_index_nl_join_targets_indexed_leaf(self, enumerator):
        entries = enumerator.expand(OrKey(Expression.of("orders", "lineitem"), ANY_PROPERTY))
        inl = [e for e in entries if e.physical_op is PhysicalOperator.INDEX_NL_JOIN]
        assert inl
        for entry in inl:
            assert entry.right.prop.kind.value == "indexed"

    def test_sorted_join_property_offers_enforcer(self, enumerator):
        prop = PhysicalProperty.sorted_on(ColumnRef("orders", "o_custkey"))
        entries = enumerator.expand(OrKey(Expression.of("customer", "orders"), prop))
        operators = {entry.physical_op for entry in entries}
        assert PhysicalOperator.SORT in operators
        sort_entries = [e for e in entries if e.physical_op is PhysicalOperator.SORT]
        assert sort_entries[0].left.prop.is_any
        assert sort_entries[0].left.expression == Expression.of("customer", "orders")

    def test_indexes_are_stable_and_unique(self, enumerator):
        or_key = OrKey(Expression.of("customer", "orders", "lineitem"), ANY_PROPERTY)
        first = enumerator.expand(or_key)
        second = enumerator.expand(or_key)
        assert [e.key for e in first] == [e.key for e in second]
        assert len({e.key.index for e in first}) == len(first)


class TestEnumerationOptions:
    def test_disabling_sort_merge(self):
        enumerator = SearchSpaceEnumerator(
            q3s(), tpch_catalog(0.01), EnumerationOptions(enable_sort_merge=False)
        )
        entries = enumerator.expand(OrKey(Expression.of("customer", "orders"), ANY_PROPERTY))
        assert all(e.physical_op is not PhysicalOperator.SORT_MERGE_JOIN for e in entries)

    def test_left_deep_only_restricts_partitions(self):
        enumerator = SearchSpaceEnumerator(
            q5s(), tpch_catalog(0.01), EnumerationOptions(left_deep_only=True)
        )
        or_key = OrKey(Expression.of("region", "nation", "customer", "orders"), ANY_PROPERTY)
        for entry in enumerator.expand(or_key):
            if entry.is_binary:
                assert entry.left.expression.is_leaf or entry.right.expression.is_leaf


class TestUniverse:
    def test_full_universe_size_counts(self, enumerator):
        or_count, and_count = enumerator.full_universe_size()
        assert or_count > 10
        assert and_count > or_count

    def test_universe_larger_for_bigger_query(self):
        small = SearchSpaceEnumerator(q3s(), tpch_catalog(0.01)).full_universe_size()
        large = SearchSpaceEnumerator(q5s(), tpch_catalog(0.01)).full_universe_size()
        assert large[0] > small[0]
        assert large[1] > small[1]
