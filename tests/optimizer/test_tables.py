"""Tests for optimizer view row types and the pruning configuration."""

import pytest

from repro.optimizer.tables import AndKey, OrKey, PruningConfig, SearchSpaceEntry
from repro.relational.expressions import Expression
from repro.relational.plan import LogicalOperator, PhysicalOperator
from repro.relational.properties import ANY_PROPERTY


class TestKeys:
    def test_and_key_or_key_projection(self):
        and_key = AndKey(Expression.of("a", "b"), ANY_PROPERTY, 2)
        assert and_key.or_key == OrKey(Expression.of("a", "b"), ANY_PROPERTY)
        assert and_key.index == 2

    def test_keys_hashable_and_ordered(self):
        keys = {
            OrKey(Expression.leaf("a")),
            OrKey(Expression.leaf("b")),
            OrKey(Expression.leaf("a")),
        }
        assert len(keys) == 2
        assert sorted(keys)[0].expression == Expression.leaf("a")


class TestSearchSpaceEntry:
    def test_leaf_entry(self):
        entry = SearchSpaceEntry(
            AndKey(Expression.leaf("a"), ANY_PROPERTY, 1),
            LogicalOperator.SCAN,
            PhysicalOperator.SEQ_SCAN,
        )
        assert entry.is_leaf
        assert entry.children() == ()

    def test_unary_entry(self):
        entry = SearchSpaceEntry(
            AndKey(Expression.of("a", "b"), ANY_PROPERTY, 1),
            LogicalOperator.JOIN,
            PhysicalOperator.SORT,
            left=OrKey(Expression.of("a", "b")),
        )
        assert entry.is_unary and not entry.is_binary
        assert len(entry.children()) == 1

    def test_binary_entry(self):
        entry = SearchSpaceEntry(
            AndKey(Expression.of("a", "b"), ANY_PROPERTY, 1),
            LogicalOperator.JOIN,
            PhysicalOperator.HASH_JOIN,
            left=OrKey(Expression.leaf("a")),
            right=OrKey(Expression.leaf("b")),
        )
        assert entry.is_binary
        assert len(entry.children()) == 2


class TestPruningConfig:
    def test_full_enables_everything(self):
        config = PruningConfig.full()
        assert config.aggregate_selection
        assert config.tuple_source_suppression
        assert config.reference_counting
        assert config.recursive_bounding

    def test_none_disables_everything(self):
        config = PruningConfig.none()
        assert not config.aggregate_selection

    def test_evita_raced_keeps_plan_table_entries(self):
        config = PruningConfig.evita_raced()
        assert config.aggregate_selection
        assert not config.tuple_source_suppression
        assert not config.reference_counting
        assert not config.recursive_bounding

    def test_suppression_requires_aggregate_selection(self):
        with pytest.raises(ValueError):
            PruningConfig(aggregate_selection=False, tuple_source_suppression=True,
                          reference_counting=False, recursive_bounding=False)

    def test_bounding_requires_aggregate_selection(self):
        with pytest.raises(ValueError):
            PruningConfig(aggregate_selection=False, tuple_source_suppression=False,
                          reference_counting=False, recursive_bounding=True)

    @pytest.mark.parametrize(
        "config,label",
        [
            (PruningConfig.aggsel(), "AggSel"),
            (PruningConfig.aggsel_refcount(), "AggSel+RefCount"),
            (PruningConfig.aggsel_bounding(), "AggSel+Branch&Bounding"),
            (PruningConfig.full(), "All"),
            (PruningConfig.none(), "NoPruning"),
        ],
    )
    def test_labels_match_paper_legends(self, config, label):
        assert config.label() == label
