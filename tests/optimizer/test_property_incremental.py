"""Property-based test of the paper's central invariant.

For *any* sequence of statistics changes, incrementally re-optimizing must
yield the same optimal plan cost as optimizing from scratch under the same
statistics — regardless of which pruning techniques are enabled.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.baselines.volcano import VolcanoOptimizer
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.optimizer.tables import PruningConfig
from repro.workloads.queries import q3s, q5_expression_chain, q5s
from repro.workloads.tpch import tpch_catalog

CATALOG = tpch_catalog(0.01)

factor_values = st.sampled_from([0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0])

q3s_changes = st.lists(
    st.one_of(
        st.tuples(
            st.just("selectivity"),
            st.sampled_from(["customer orders", "lineitem orders", "customer lineitem orders"]),
            factor_values,
        ),
        st.tuples(
            st.just("scan"), st.sampled_from(["customer", "orders", "lineitem"]), factor_values
        ),
        st.tuples(
            st.just("cardinality"),
            st.sampled_from(["customer", "orders", "lineitem"]),
            factor_values,
        ),
    ),
    min_size=1,
    max_size=5,
)


def apply_change(optimizer, change):
    kind, target, factor = change
    if kind == "selectivity":
        from repro.relational.expressions import Expression

        return optimizer.update_join_selectivity(Expression(target.split()), factor)
    if kind == "scan":
        return optimizer.update_scan_cost(target, factor)
    return optimizer.update_table_cardinality(target, factor)


@given(q3s_changes)
@settings(max_examples=25, deadline=None)
def test_incremental_matches_from_scratch_q3s(changes):
    optimizer = DeclarativeOptimizer(q3s(), CATALOG)
    optimizer.optimize()
    result = None
    for change in changes:
        delta = apply_change(optimizer, change)
        result = optimizer.reoptimize([delta])
    scratch = VolcanoOptimizer(
        q3s(), CATALOG, overlay=optimizer.cost_model.overlay.copy()
    ).optimize()
    assert result.cost == pytest.approx(scratch.cost, rel=1e-6)


chain_changes = st.lists(
    st.tuples(st.sampled_from(["A", "B", "C", "D", "E"]), factor_values),
    min_size=1,
    max_size=4,
)


@given(chain_changes, st.sampled_from(["aggsel", "refcount", "bounding", "full", "evita"]))
@settings(max_examples=15, deadline=None)
def test_incremental_matches_from_scratch_q5s_all_configs(changes, config_name):
    configs = {
        "aggsel": PruningConfig.aggsel(),
        "refcount": PruningConfig.aggsel_refcount(),
        "bounding": PruningConfig.aggsel_bounding(),
        "full": PruningConfig.full(),
        "evita": PruningConfig.evita_raced(),
    }
    optimizer = DeclarativeOptimizer(q5s(), CATALOG, pruning=configs[config_name])
    optimizer.optimize()
    expressions = q5_expression_chain()
    deltas = [
        optimizer.update_join_selectivity(expressions[label], factor)
        for label, factor in changes
    ]
    result = optimizer.reoptimize(deltas)
    scratch = VolcanoOptimizer(
        q5s(), CATALOG, overlay=optimizer.cost_model.overlay.copy()
    ).optimize()
    assert result.cost == pytest.approx(scratch.cost, rel=1e-6)
