"""Tests for the declarative optimizer: initial optimization behaviour."""

import pytest

from repro.common.errors import OptimizationError
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.optimizer.tables import OrKey, PruningConfig
from repro.relational.expressions import Expression
from repro.relational.plan import PhysicalOperator
from repro.relational.properties import ANY_PROPERTY
from repro.workloads.queries import q3s, q5, q5s
from repro.workloads.tpch import tpch_catalog


@pytest.fixture(scope="module")
def catalog_small():
    return tpch_catalog(0.01)


class TestInitialOptimization:
    def test_produces_plan_covering_all_relations(self, catalog_small):
        optimizer = DeclarativeOptimizer(q3s(), catalog_small)
        result = optimizer.optimize()
        assert sorted(result.plan.leaf_order()) == ["customer", "lineitem", "orders"]
        assert result.cost > 0

    def test_plan_cost_matches_total(self, catalog_small):
        optimizer = DeclarativeOptimizer(q3s(), catalog_small)
        result = optimizer.optimize()
        assert result.cost == pytest.approx(result.plan.total_cost)

    def test_plan_totals_are_consistent_with_children(self, catalog_small):
        optimizer = DeclarativeOptimizer(q5s(), catalog_small)
        result = optimizer.optimize()
        for node in result.plan.iter_nodes():
            expected = node.local_cost + sum(child.total_cost for child in node.children)
            assert node.total_cost == pytest.approx(expected, rel=1e-6)

    def test_aggregation_query_gets_aggregate_root(self, catalog_small):
        optimizer = DeclarativeOptimizer(q5(), catalog_small)
        result = optimizer.optimize()
        assert result.plan.operator is PhysicalOperator.HASH_AGGREGATE
        assert len(result.plan.children) == 1

    def test_non_aggregation_query_has_join_root(self, catalog_small):
        optimizer = DeclarativeOptimizer(q5s(), catalog_small)
        result = optimizer.optimize()
        assert result.plan.operator is not PhysicalOperator.HASH_AGGREGATE

    def test_best_cost_accessor(self, catalog_small):
        optimizer = DeclarativeOptimizer(q3s(), catalog_small)
        optimizer.optimize()
        root = OrKey(q3s().root_expression, ANY_PROPERTY)
        assert optimizer.best_cost(root) > 0
        with pytest.raises(OptimizationError):
            optimizer.best_cost(OrKey(Expression.of("customer", "lineitem"), ANY_PROPERTY))

    def test_reoptimize_before_optimize_rejected(self, catalog_small):
        optimizer = DeclarativeOptimizer(q3s(), catalog_small)
        with pytest.raises(OptimizationError):
            optimizer.reoptimize([])

    def test_optimize_is_repeatable(self, catalog_small):
        optimizer = DeclarativeOptimizer(q3s(), catalog_small)
        first = optimizer.optimize()
        second = optimizer.optimize()
        assert first.cost == pytest.approx(second.cost)

    def test_search_space_rows_only_contains_active_entries(self, catalog_small):
        optimizer = DeclarativeOptimizer(q3s(), catalog_small)
        optimizer.optimize()
        active = optimizer.active_search_space()
        for row in optimizer.search_space_rows():
            assert row.key in active


class TestMetricsOfInitialRun:
    def test_metrics_counts_positive(self, catalog_small):
        result = DeclarativeOptimizer(q3s(), catalog_small).optimize()
        metrics = result.metrics
        assert metrics.or_nodes_enumerated > 0
        assert metrics.and_nodes_enumerated >= metrics.or_nodes_enumerated
        assert metrics.plan_costs_computed > 0
        assert metrics.elapsed_seconds > 0

    def test_full_pruning_reduces_state(self, catalog_small):
        result = DeclarativeOptimizer(q5s(), catalog_small, pruning=PruningConfig.full()).optimize()
        assert result.metrics.pruning_ratio_or > 0.3
        assert result.metrics.pruning_ratio_and > 0.5

    def test_evita_raced_never_prunes_plan_table_entries(self, catalog_small):
        result = DeclarativeOptimizer(
            q5s(), catalog_small, pruning=PruningConfig.evita_raced()
        ).optimize()
        assert result.metrics.or_nodes_pruned == 0
        assert result.metrics.pruning_ratio_and > 0.0

    def test_final_state_contains_only_optimal_plan_with_full_pruning(self, catalog_small):
        """§3.2: at the end, SearchSpace/PlanCost only hold the optimal plan tree."""
        optimizer = DeclarativeOptimizer(q3s(), catalog_small, pruning=PruningConfig.full())
        result = optimizer.optimize()
        active = optimizer.active_search_space()
        # The final active SearchSpace should be about the size of the plan
        # (one alternative per plan node, modulo equivalent-cost ties).
        assert len(active) <= result.plan.node_count + 3


class TestPlanQualityAgainstExhaustiveSearch:
    def test_matches_exhaustive_enumeration_cost(self, catalog_small):
        """The declarative optimizer with full pruning must still find the
        global optimum found by an optimizer with no pruning at all."""
        pruned = DeclarativeOptimizer(q3s(), catalog_small, pruning=PruningConfig.full())
        unpruned = DeclarativeOptimizer(q3s(), catalog_small, pruning=PruningConfig.none())
        assert pruned.optimize().cost == pytest.approx(unpruned.optimize().cost)
