"""Tests for optimizer metrics and the metrics recorder."""

from repro.optimizer.metrics import MetricsRecorder, OptimizationMetrics
from repro.optimizer.tables import AndKey, OrKey
from repro.relational.expressions import Expression
from repro.relational.properties import ANY_PROPERTY


class TestOptimizationMetrics:
    def test_pruning_ratios(self):
        metrics = OptimizationMetrics(
            or_nodes_enumerated=10,
            or_nodes_pruned=4,
            and_nodes_enumerated=20,
            and_nodes_pruned=15,
        )
        assert metrics.pruning_ratio_or == 0.4
        assert metrics.pruning_ratio_and == 0.75

    def test_zero_denominators(self):
        metrics = OptimizationMetrics()
        assert metrics.pruning_ratio_or == 0.0
        assert metrics.update_ratio_and == 0.0

    def test_update_ratios(self):
        metrics = OptimizationMetrics(
            or_nodes_touched=3, or_nodes_total=10, and_nodes_touched=5, and_nodes_total=50
        )
        assert metrics.update_ratio_or == 0.3
        assert metrics.update_ratio_and == 0.1

    def test_as_dict_contains_all_ratios(self):
        keys = OptimizationMetrics().as_dict()
        for name in (
            "pruning_ratio_or", "pruning_ratio_and", "update_ratio_or", "update_ratio_and"
        ):
            assert name in keys


class TestMetricsRecorder:
    def test_touch_sets_are_deduplicated(self):
        recorder = MetricsRecorder()
        recorder.start()
        key = OrKey(Expression.leaf("a"), ANY_PROPERTY)
        recorder.touch_or(key)
        recorder.touch_or(key)
        recorder.touch_and(AndKey(Expression.leaf("a"), ANY_PROPERTY, 1))
        assert recorder.touched_or_count == 1
        assert recorder.touched_and_count == 1

    def test_start_resets_state(self):
        recorder = MetricsRecorder()
        recorder.start()
        recorder.touch_or(OrKey(Expression.leaf("a"), ANY_PROPERTY))
        recorder.record_plan_cost()
        recorder.start()
        assert recorder.touched_or_count == 0
        assert recorder.plan_costs_computed == 0

    def test_elapsed_monotone(self):
        recorder = MetricsRecorder()
        assert recorder.elapsed() == 0.0
        recorder.start()
        assert recorder.elapsed() >= 0.0
