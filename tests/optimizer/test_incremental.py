"""Tests for incremental re-optimization (§4): the paper's core claim.

The key invariant: after any sequence of statistics changes, the incrementally
maintained optimizer must report the same best cost as a from-scratch
optimization run under the same statistics.
"""

import pytest

from repro.optimizer.baselines.volcano import VolcanoOptimizer
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.optimizer.tables import PruningConfig
from repro.workloads.queries import q3s, q5, q5_expression_chain, q5s
from repro.workloads.tpch import tpch_catalog


@pytest.fixture(scope="module")
def catalog_small():
    return tpch_catalog(0.01)


def fresh_cost(query, catalog, overlay) -> float:
    """Optimal cost from a from-scratch Volcano run sharing the overlay."""
    return VolcanoOptimizer(query, catalog, overlay=overlay.copy()).optimize().cost


class TestSelectivityChanges:
    @pytest.mark.parametrize("factor", [0.125, 0.5, 2.0, 8.0])
    def test_reoptimized_cost_matches_from_scratch(self, catalog_small, factor):
        query = q5()
        optimizer = DeclarativeOptimizer(query, catalog_small)
        optimizer.optimize()
        expressions = q5_expression_chain()
        delta = optimizer.update_join_selectivity(expressions["C"], factor)
        result = optimizer.reoptimize([delta])
        expected = fresh_cost(query, catalog_small, optimizer.cost_model.overlay)
        assert result.cost == pytest.approx(expected, rel=1e-6)

    @pytest.mark.parametrize("label", ["A", "B", "C", "D", "E"])
    def test_every_chain_expression_can_be_updated(self, catalog_small, label):
        query = q5()
        optimizer = DeclarativeOptimizer(query, catalog_small)
        optimizer.optimize()
        delta = optimizer.update_join_selectivity(q5_expression_chain()[label], 4.0)
        result = optimizer.reoptimize([delta])
        expected = fresh_cost(query, catalog_small, optimizer.cost_model.overlay)
        assert result.cost == pytest.approx(expected, rel=1e-6)

    def test_update_ratio_smaller_for_larger_expressions(self, catalog_small):
        """Figure 5's trend: changes to larger subplans touch less state."""
        query = q5()
        expressions = q5_expression_chain()

        def touched(label: str) -> int:
            optimizer = DeclarativeOptimizer(query, catalog_small)
            optimizer.optimize()
            delta = optimizer.update_join_selectivity(expressions[label], 4.0)
            return optimizer.reoptimize([delta]).metrics.and_nodes_touched

        assert touched("E") <= touched("A")

    def test_incremental_touches_fraction_of_state(self, catalog_small):
        query = q5()
        optimizer = DeclarativeOptimizer(query, catalog_small)
        optimizer.optimize()
        delta = optimizer.update_join_selectivity(q5_expression_chain()["D"], 2.0)
        metrics = optimizer.reoptimize([delta]).metrics
        assert 0 < metrics.update_ratio_and < 0.8
        assert 0 < metrics.update_ratio_or < 0.8


class TestScanCostChanges:
    @pytest.mark.parametrize("factor", [0.125, 0.5, 2.0, 8.0])
    def test_orders_scan_cost_change(self, catalog_small, factor):
        """The paper's Figure 8 scenario: the Orders scan cost is updated."""
        query = q5()
        optimizer = DeclarativeOptimizer(query, catalog_small)
        optimizer.optimize()
        delta = optimizer.update_scan_cost("orders", factor)
        result = optimizer.reoptimize([delta])
        expected = fresh_cost(query, catalog_small, optimizer.cost_model.overlay)
        assert result.cost == pytest.approx(expected, rel=1e-6)

    def test_scan_cost_increase_can_change_plan_shape(self, catalog_small):
        query = q3s()
        optimizer = DeclarativeOptimizer(query, catalog_small)
        before = optimizer.optimize()
        delta = optimizer.update_scan_cost("lineitem", 50.0)
        after = optimizer.reoptimize([delta])
        assert after.cost > before.cost
        expected = fresh_cost(query, catalog_small, optimizer.cost_model.overlay)
        assert after.cost == pytest.approx(expected, rel=1e-6)


class TestRepeatedAndCombinedChanges:
    def test_sequence_of_changes_stays_consistent(self, catalog_small):
        query = q5()
        optimizer = DeclarativeOptimizer(query, catalog_small)
        optimizer.optimize()
        expressions = q5_expression_chain()
        history = [
            ("A", 8.0),
            ("C", 0.25),
            ("A", 1.0),
            ("E", 2.0),
            ("B", 0.5),
        ]
        for label, factor in history:
            delta = optimizer.update_join_selectivity(expressions[label], factor)
            result = optimizer.reoptimize([delta])
            expected = fresh_cost(query, catalog_small, optimizer.cost_model.overlay)
            assert result.cost == pytest.approx(expected, rel=1e-6)

    def test_multiple_simultaneous_changes(self, catalog_small):
        query = q5s()
        optimizer = DeclarativeOptimizer(query, catalog_small)
        optimizer.optimize()
        expressions = q5_expression_chain()
        deltas = [
            optimizer.update_join_selectivity(expressions["B"], 3.0),
            optimizer.update_scan_cost("lineitem", 2.0),
            optimizer.update_table_cardinality("supplier", 0.5),
        ]
        result = optimizer.reoptimize(deltas)
        expected = fresh_cost(query, catalog_small, optimizer.cost_model.overlay)
        assert result.cost == pytest.approx(expected, rel=1e-6)

    def test_revert_restores_original_plan_cost(self, catalog_small):
        query = q5()
        optimizer = DeclarativeOptimizer(query, catalog_small)
        original = optimizer.optimize()
        expressions = q5_expression_chain()
        delta = optimizer.update_join_selectivity(expressions["C"], 8.0)
        optimizer.reoptimize([delta])
        revert = optimizer.update_join_selectivity(expressions["C"], 1.0)
        restored = optimizer.reoptimize([revert])
        assert restored.cost == pytest.approx(original.cost, rel=1e-6)

    def test_noop_delta_touches_nothing(self, catalog_small):
        query = q5()
        optimizer = DeclarativeOptimizer(query, catalog_small)
        optimizer.optimize()
        delta = optimizer.update_join_selectivity(q5_expression_chain()["C"], 1.0)
        metrics = optimizer.reoptimize([delta]).metrics
        assert metrics.and_nodes_touched == 0


class TestIncrementalWithDifferentPruningConfigs:
    @pytest.mark.parametrize(
        "config",
        [
            PruningConfig.aggsel(),
            PruningConfig.aggsel_refcount(),
            PruningConfig.aggsel_bounding(),
            PruningConfig.full(),
            PruningConfig.evita_raced(),
        ],
        ids=lambda config: config.label() if hasattr(config, "label") else str(config),
    )
    def test_correct_under_every_config(self, catalog_small, config):
        query = q5s()
        optimizer = DeclarativeOptimizer(query, catalog_small, pruning=config)
        optimizer.optimize()
        delta = optimizer.update_join_selectivity(q5_expression_chain()["C"], 6.0)
        result = optimizer.reoptimize([delta])
        expected = fresh_cost(query, catalog_small, optimizer.cost_model.overlay)
        assert result.cost == pytest.approx(expected, rel=1e-6)

    def test_observe_cardinality_roundtrip(self, catalog_small):
        query = q5s()
        optimizer = DeclarativeOptimizer(query, catalog_small)
        optimizer.optimize()
        expression = q5_expression_chain()["B"]
        delta = optimizer.observe_cardinality(expression, 1234.0)
        optimizer.reoptimize([delta])
        assert optimizer.cost_model.summary(expression).cardinality == pytest.approx(
            1234.0, rel=1e-3
        )
