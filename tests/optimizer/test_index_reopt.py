"""Incremental re-optimization flipping the access path.

The paper's core loop — observed cardinalities fed back as statistics
deltas through ``reoptimize`` — now has a physically meaningful payoff:
when a filter turns out far more selective than estimated, the cheapest
plan flips from a sequential scan to an index scan (and back), without a
from-scratch optimization.
"""

import random

from repro.catalog.catalog import Catalog
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.relational.expressions import Expression
from repro.relational.plan import PhysicalOperator
from repro.relational.predicates import ComparisonOp
from repro.relational.query import QueryBuilder
from repro.relational.schema import Column, Index, Schema, Table


def catalog(rows=5000, seed=3):
    schema = Schema(
        tables=[Table("t", [Column("a"), Column("b")])],
        indexes=[Index("idx_t_a", "t", "a")],
    )
    rng = random.Random(seed)
    data = {"t": [{"a": rng.randrange(100), "b": rng.randrange(10)} for _ in range(rows)]}
    return Catalog.from_data(schema, data)


def wide_filter_query():
    """``a <= 90`` estimates ~90% selectivity: the seq scan wins upfront."""
    return QueryBuilder("flip").scan("t").filter("t.a", ComparisonOp.LE, 90).build()


class TestAccessPathFlip:
    def test_observed_selectivity_flips_seq_to_index(self):
        optimizer = DeclarativeOptimizer(wide_filter_query(), catalog())
        initial = optimizer.optimize()
        assert initial.plan.operator is PhysicalOperator.SEQ_SCAN

        # Runtime reveals the filter keeps ~50 rows, not ~4500.
        delta = optimizer.observe_cardinality(Expression.leaf("t"), 50)
        refreshed = optimizer.reoptimize([delta])
        assert refreshed.plan.operator is PhysicalOperator.INDEX_SCAN
        assert refreshed.plan.detail("index") == "idx_t_a"
        assert refreshed.cost < initial.cost

    def test_flip_reverses_when_selectivity_recovers(self):
        optimizer = DeclarativeOptimizer(wide_filter_query(), catalog())
        optimizer.optimize()
        to_index = optimizer.observe_cardinality(Expression.leaf("t"), 50)
        assert optimizer.reoptimize([to_index]).plan.operator is PhysicalOperator.INDEX_SCAN
        back = optimizer.observe_cardinality(Expression.leaf("t"), 4500)
        assert optimizer.reoptimize([back]).plan.operator is PhysicalOperator.SEQ_SCAN

    def test_incremental_pass_touches_less_than_full_space(self):
        optimizer = DeclarativeOptimizer(wide_filter_query(), catalog())
        optimizer.optimize()
        delta = optimizer.observe_cardinality(Expression.leaf("t"), 50)
        metrics = optimizer.reoptimize([delta]).metrics
        assert metrics.and_nodes_touched is not None
        assert metrics.and_nodes_touched <= metrics.and_nodes_enumerated
