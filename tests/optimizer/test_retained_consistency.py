"""Regression tests: retained costs of dead regions must not stay stale.

During the initial pass, reference counting kills regions whose parents were
all pruned, and (for efficiency) their retained costs are not maintained while
the rest of the search space keeps improving.  ``reoptimize`` relies on
retained costs to decide re-introduction, so it must refresh the stale ones
before trusting them.  The historical failure mode (set-iteration-order
dependent, so it only surfaced on some runs): a dead region's stale-high
BestCost made the true optimum lose at the root, producing an incremental
cost above the from-scratch cost.
"""

import pytest

from repro.optimizer.baselines.volcano import VolcanoOptimizer
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.optimizer.tables import PruningConfig
from repro.workloads.queries import q5_expression_chain, q5s
from repro.workloads.tpch import tpch_catalog

CONFIGS = {
    "refcount": PruningConfig.aggsel_refcount(),
    "full": PruningConfig.full(),
}


def assert_retained_costs_consistent(optimizer: DeclarativeOptimizer) -> None:
    """Every stored plan cost must match a recomputation from current state."""
    for state in optimizer._or_states.values():
        for entry in state.alternatives.values():
            stored = optimizer._plan_costs.get(entry.key)
            if stored is None:
                continue
            child_bests = [optimizer._best.value(child) for child in entry.children()]
            if any(best is None for best in child_bests):
                continue
            local, _ = optimizer._local_cost(entry)
            expected = optimizer.cost_model.combine(local, *child_bests)
            assert stored.total_cost == pytest.approx(expected, rel=1e-9), (
                f"retained cost of {entry.key} is stale: "
                f"stored {stored.total_cost}, recomputed {expected} "
                f"(alive={state.alive})"
            )


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
@pytest.mark.parametrize("label,factor", [("D", 2.0), ("C", 4.0), ("E", 0.25)])
def test_no_stale_retained_costs_after_reoptimize(config_name, label, factor):
    catalog = tpch_catalog(0.01)
    optimizer = DeclarativeOptimizer(q5s(), catalog, pruning=CONFIGS[config_name])
    optimizer.optimize()
    delta = optimizer.update_join_selectivity(q5_expression_chain()[label], factor)
    optimizer.reoptimize([delta])
    assert_retained_costs_consistent(optimizer)


@pytest.mark.parametrize("config_name", sorted(CONFIGS))
def test_reoptimize_matches_scratch_after_refcount_kills(config_name):
    """The historical counterexample: D×2.0 under the refcount config."""
    catalog = tpch_catalog(0.01)
    optimizer = DeclarativeOptimizer(q5s(), catalog, pruning=CONFIGS[config_name])
    optimizer.optimize()
    delta = optimizer.update_join_selectivity(q5_expression_chain()["D"], 2.0)
    result = optimizer.reoptimize([delta])
    scratch = VolcanoOptimizer(
        q5s(), catalog, overlay=optimizer.cost_model.overlay.copy()
    ).optimize()
    assert result.cost == pytest.approx(scratch.cost, rel=1e-6)


def test_repeated_reoptimization_stays_consistent():
    """Several rounds of changes keep retained state consistent throughout."""
    catalog = tpch_catalog(0.01)
    optimizer = DeclarativeOptimizer(q5s(), catalog, pruning=PruningConfig.aggsel_refcount())
    optimizer.optimize()
    expressions = q5_expression_chain()
    for label, factor in [("D", 2.0), ("B", 8.0), ("D", 0.5), ("E", 4.0)]:
        delta = optimizer.update_join_selectivity(expressions[label], factor)
        result = optimizer.reoptimize([delta])
        assert_retained_costs_consistent(optimizer)
        scratch = VolcanoOptimizer(
            q5s(), catalog, overlay=optimizer.cost_model.overlay.copy()
        ).optimize()
        assert result.cost == pytest.approx(scratch.cost, rel=1e-6)
