"""Tests for the recursive bounding state (Bound / ParentBound / MaxBound)."""

from repro.optimizer.pruning.bounds import INFINITY, BoundsManager
from repro.optimizer.tables import AndKey, OrKey
from repro.relational.expressions import Expression
from repro.relational.properties import ANY_PROPERTY


def or_key(*aliases: str) -> OrKey:
    return OrKey(Expression.of(*aliases), ANY_PROPERTY)


def and_key(*aliases: str, index: int = 1) -> AndKey:
    return AndKey(Expression.of(*aliases), ANY_PROPERTY, index)


class TestBestCostBounds:
    def test_default_bound_is_infinite(self):
        manager = BoundsManager()
        assert manager.bound(or_key("a", "b")) == INFINITY

    def test_best_cost_sets_bound(self):
        manager = BoundsManager()
        change = manager.update_best_cost(or_key("a", "b"), 10.0)
        assert change is not None
        assert change.new_bound == 10.0
        assert manager.bound(or_key("a", "b")) == 10.0

    def test_unchanged_best_cost_returns_none(self):
        manager = BoundsManager()
        manager.update_best_cost(or_key("a"), 5.0)
        assert manager.update_best_cost(or_key("a"), 5.0) is None

    def test_clearing_best_cost_restores_infinity(self):
        manager = BoundsManager()
        manager.update_best_cost(or_key("a"), 5.0)
        change = manager.update_best_cost(or_key("a"), None)
        assert change is not None and change.new_bound == INFINITY


class TestParentContributions:
    def test_parent_contribution_bounds_child(self):
        manager = BoundsManager()
        child = or_key("a")
        parent = and_key("a", "b")
        change = manager.set_contribution(child, parent, "left", 7.0)
        assert change is not None and change.new_bound == 7.0
        assert manager.max_parent_bound(child) == 7.0

    def test_bound_is_min_of_best_and_parent(self):
        manager = BoundsManager()
        child = or_key("a")
        manager.update_best_cost(child, 5.0)
        manager.set_contribution(child, and_key("a", "b"), "left", 8.0)
        assert manager.bound(child) == 5.0
        manager.set_contribution(child, and_key("a", "b"), "left", 3.0)
        assert manager.bound(child) == 3.0

    def test_max_over_multiple_parents(self):
        """A child is only prunable past the *loosest* parent bound (rule r3)."""
        manager = BoundsManager()
        child = or_key("a")
        manager.set_contribution(child, and_key("a", "b"), "left", 3.0)
        manager.set_contribution(child, and_key("a", "c"), "left", 9.0)
        assert manager.max_parent_bound(child) == 9.0
        assert manager.bound(child) == 9.0

    def test_removing_loosest_parent_tightens_bound(self):
        manager = BoundsManager()
        child = or_key("a")
        manager.set_contribution(child, and_key("a", "b"), "left", 3.0)
        manager.set_contribution(child, and_key("a", "c"), "left", 9.0)
        change = manager.set_contribution(child, and_key("a", "c"), "left", None)
        assert change is not None
        assert manager.bound(child) == 3.0

    def test_updating_contribution_value(self):
        manager = BoundsManager()
        child = or_key("a")
        manager.set_contribution(child, and_key("a", "b"), "left", 3.0)
        change = manager.set_contribution(child, and_key("a", "b"), "left", 12.0)
        assert change is not None and change.new_bound == 12.0

    def test_identical_contribution_is_silent(self):
        manager = BoundsManager()
        child = or_key("a")
        manager.set_contribution(child, and_key("a", "b"), "left", 3.0)
        assert manager.set_contribution(child, and_key("a", "b"), "left", 3.0) is None

    def test_removing_absent_contribution_is_silent(self):
        manager = BoundsManager()
        assert manager.set_contribution(or_key("a"), and_key("a", "b"), "left", None) is None

    def test_remove_parent_clears_both_sides(self):
        manager = BoundsManager()
        left_child = or_key("a")
        right_child = or_key("b")
        parent = and_key("a", "b")
        manager.set_contribution(left_child, parent, "left", 4.0)
        manager.set_contribution(right_child, parent, "right", 6.0)
        changes = manager.remove_parent(parent)
        assert len(changes) == 2
        assert manager.bound(left_child) == INFINITY
        assert manager.bound(right_child) == INFINITY


class TestBoundChangeDirections:
    def test_increase_and_decrease_flags(self):
        manager = BoundsManager()
        key = or_key("a")
        first = manager.update_best_cost(key, 10.0)
        assert first.decreased and not first.increased
        second = manager.update_best_cost(key, 20.0)
        assert second.increased and not second.decreased
