"""Concurrency torture tests for a shared Database.

Two families:

* **snapshot consistency** — many writer and reader threads over one table;
  readers must always observe a published version's exact contents (the
  serial oracle: version ``v`` holds ``v * BATCH`` rows, because every
  append publishes exactly one new version);
* **introspection races** — ``stats()`` and ``refresh_cached_plans()``
  hammered while other threads execute and evict cached plans.  Before the
  plan cache and monitor took locks (this PR), that raised ``RuntimeError:
  OrderedDict mutated during iteration`` from the cache's entry iteration —
  the race documented in :mod:`repro.api.plan_cache`'s docstring.
"""

import threading

from repro.api.database import Database

BATCH = 4


def make_database(**kwargs) -> Database:
    database = Database(**kwargs)
    database.execute("CREATE TABLE t (a INTEGER, b INTEGER, INDEX (a))")
    database.execute("ANALYZE t")
    return database


def run_threads(workers):
    """Start, then join, one thread per worker callable."""
    threads = [threading.Thread(target=worker) for worker in workers]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestSnapshotTorture:
    """≥8 concurrent writers + readers: every read sees one whole version."""

    def test_writers_publish_readers_see_consistent_versions(self):
        database = make_database()
        writers, readers = 8, 8
        batches_per_writer = 12
        errors = []
        stop = threading.Event()

        def writer(seed):
            def run():
                try:
                    for batch in range(batches_per_writer):
                        base = seed * 1_000_000 + batch * BATCH
                        values = ", ".join(
                            f"({base + i}, {i})" for i in range(BATCH)
                        )
                        database.execute(f"INSERT INTO t VALUES {values}")
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            return run

        def reader():
            def run():
                try:
                    while not stop.is_set():
                        # The serial oracle: appends go through one write lock
                        # and publish one version per batch, so any consistent
                        # snapshot holds a whole number of batches.  COUNT(*)
                        # and the version are read from one snapshot each; a
                        # torn (mid-append) view would break the invariant.
                        version = database.table_version("t")
                        count = database.execute("SELECT COUNT(*) FROM t").rows[0][
                            "count(*)"
                        ]
                        assert count % BATCH == 0, (
                            f"torn read: {count} rows is not a whole number of "
                            f"{BATCH}-row batches"
                        )
                        # Published data only grows; the version read before
                        # the count is a lower bound on what the count saw.
                        assert count >= version * BATCH - BATCH, (version, count)
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            return run

        workers = [writer(seed) for seed in range(writers)]
        reader_threads = [threading.Thread(target=reader()) for _ in range(readers)]
        for thread in reader_threads:
            thread.start()
        run_threads(workers)
        stop.set()
        for thread in reader_threads:
            thread.join()

        assert not errors, errors[:3]
        # After the dust settles: the serial oracle exactly.
        expected_rows = writers * batches_per_writer * BATCH
        assert database.table_version("t") == writers * batches_per_writer
        final = database.execute("SELECT COUNT(*) FROM t").rows[0]["count(*)"]
        assert final == expected_rows
        # The maintained index agrees with the column data on the final version.
        stored = database.store["t"]
        assert stored.indexes["idx_t_a"].entry_count == expected_rows

    def test_index_scans_match_serial_oracle_per_version(self):
        """An indexed point query sees a whole published batch or none of it."""
        database = make_database()
        probes = 200
        errors = []
        done = threading.Event()

        def writer():
            for batch in range(40):
                base = batch * BATCH
                values = ", ".join(f"({batch}, {base + i})" for i in range(BATCH))
                database.execute(f"INSERT INTO t VALUES {values}")
            done.set()

        def prober():
            try:
                for probe in range(probes):
                    rows = database.execute(
                        "SELECT b FROM t WHERE a = $1", (probe % 40,)
                    ).rows
                    # Each batch writes all of key `batch` in one statement:
                    # a snapshot either has the whole batch in the index or
                    # has not seen the batch at all.
                    assert len(rows) in (0, BATCH), rows
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        probers = [threading.Thread(target=prober) for _ in range(4)]
        writer_thread = threading.Thread(target=writer)
        for thread in probers:
            thread.start()
        writer_thread.start()
        writer_thread.join()
        for thread in probers:
            thread.join()
        assert not errors, errors[:3]

    def test_concurrent_sessions_share_plan_cache(self):
        database = make_database()
        database.execute("INSERT INTO t VALUES (1, 1), (2, 2)")
        connections = [database.connect() for _ in range(8)]
        errors = []

        def client(connection):
            def run():
                try:
                    for _ in range(20):
                        rows = connection.execute("SELECT a FROM t WHERE b = $1", (1,)).fetchall()
                        assert rows == [(1,)]
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            return run

        run_threads([client(connection) for connection in connections])
        assert not errors, errors[:3]
        cache = database.plan_cache.stats()
        # One plan, shared: everyone after the first planner hits.
        assert cache["entries"] == 1
        assert cache["hits"] == 8 * 20 - 1
        # Each connection's feedback was recorded under its own session.
        assert database.stats()["monitor"]["sessions"] == 8


class TestIntrospectionRaces:
    """stats()/refresh_cached_plans() vs concurrent execution + eviction.

    The tiny plan cache (capacity 4) plus a stream of distinct statements
    forces constant eviction, so any unlocked iteration over the cache's
    OrderedDict would race a resize — the pre-fix failure mode was
    ``RuntimeError: OrderedDict mutated during iteration``.
    """

    def test_stats_and_refresh_survive_concurrent_eviction(self):
        database = make_database(plan_cache_size=4)
        database.execute("INSERT INTO t VALUES (1, 1), (2, 2), (3, 3)")
        errors = []
        stop = threading.Event()

        def executor():
            def run():
                try:
                    statement = 0
                    while not stop.is_set():
                        statement += 1
                        # Distinct texts -> distinct cache keys -> evictions.
                        database.execute(f"SELECT a FROM t WHERE b = {statement % 50}")
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            return run

        def introspector():
            def run():
                try:
                    for _ in range(150):
                        stats = database.stats()
                        assert stats["plan_cache"]["entries"] <= 4
                        database.refresh_cached_plans()
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            return run

        executors = [threading.Thread(target=executor()) for _ in range(4)]
        inspectors = [threading.Thread(target=introspector()) for _ in range(2)]
        for thread in executors + inspectors:
            thread.start()
        for thread in inspectors:
            thread.join()
        stop.set()
        for thread in executors:
            thread.join()
        assert not errors, errors[:3]
        evictions = database.plan_cache.stats()["evictions"]
        assert evictions > 0, "the race needs evictions to mean anything"

    def test_session_scoped_refresh(self):
        """refresh_cached_plans(session=...) prefers that session's feedback."""
        database = make_database()
        database.execute("INSERT INTO t VALUES (1, 1), (2, 2)")
        connection = database.connect()
        connection.execute("SELECT a FROM t WHERE b = 1").fetchall()
        # A session-scoped refresh for a session that never executed anything
        # sees no session observations and falls back to query scope.
        assert database.refresh_cached_plans(session="session-none") >= 0
        assert database.refresh_cached_plans(session=connection.session_id) >= 0

    def test_snapshot_store_survives_concurrent_create_table(self):
        """Readers resolving snapshots never trip over a store-dict resize.

        _snapshot_store runs Python code per table while resolving versions;
        before it copied the store entries atomically first, a concurrent
        CREATE TABLE inserting a new store key raised ``RuntimeError:
        dictionary changed size during iteration`` in reader threads.
        """
        database = make_database()
        database.execute("INSERT INTO t VALUES (1, 1)")
        errors = []
        stop = threading.Event()

        def creator():
            try:
                for i in range(120):
                    database.execute(f"CREATE TABLE extra_{i} (x INTEGER)")
            except Exception as error:  # noqa: BLE001
                errors.append(error)
            finally:
                stop.set()

        def reader():
            def run():
                try:
                    while not stop.is_set():
                        snapshot = database.store
                        assert "t" in snapshot
                        assert len(database.table_names) >= 1
                        database.execute("SELECT COUNT(*) FROM t")
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            return run

        readers = [threading.Thread(target=reader()) for _ in range(4)]
        creator_thread = threading.Thread(target=creator)
        for thread in readers:
            thread.start()
        creator_thread.start()
        creator_thread.join()
        for thread in readers:
            thread.join()
        assert not errors, errors[:3]


class TestPlanStampTOCTOU:
    """DDL committing mid-planning must leave the cached entry *stale*.

    Version stamps are read before the catalog state they guard is consumed;
    stamping versions read after planning would certify a plan built against
    the pre-DDL catalog as current — it would keep being served and never be
    invalidated.
    """

    def test_ddl_during_planning_invalidates_the_entry(self, monkeypatch):
        from repro.optimizer.declarative import DeclarativeOptimizer

        database = make_database()
        database.execute("INSERT INTO t VALUES (1, 1), (2, 2)")
        original = DeclarativeOptimizer.optimize
        fired = []

        def optimize_with_concurrent_ddl(self, *args, **kwargs):
            if not fired:
                fired.append(True)
                # Another session's DDL commits while this plan is being
                # built (DDL does not take the planning stripe lock).
                database.execute("CREATE INDEX idx_mid ON t (b)")
            return original(self, *args, **kwargs)

        monkeypatch.setattr(DeclarativeOptimizer, "optimize", optimize_with_concurrent_ddl)
        first = database.execute("SELECT a FROM t WHERE b = 1")
        assert not first.from_cache
        invalidations_before = database.plan_cache.stats()["invalidations"]
        # The entry was planned against the pre-DDL catalog: the next lookup
        # must treat it as stale and replan, not serve it as current.
        second = database.execute("SELECT a FROM t WHERE b = 1")
        assert not second.from_cache
        assert database.plan_cache.stats()["invalidations"] == invalidations_before + 1
        # With the catalog now quiet, the replanned entry is a normal hit.
        assert database.execute("SELECT a FROM t WHERE b = 1").from_cache
