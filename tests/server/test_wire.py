"""Full client ↔ server socket round trips.

Each test starts a real :class:`~repro.server.server.ReproServer` on an
ephemeral port (background thread, real TCP sockets) and talks to it through
:func:`repro.client.connect` — the same frames ``repro-sql --connect`` uses.
"""

import threading

import pytest

from repro.api.database import Database
from repro.client import connect
from repro.common.errors import SqlBindingError, SqlError, SqlSyntaxError
from repro.server import start_server_thread
from repro.server.protocol import encode_frame, error_payload, raise_error_payload


@pytest.fixture()
def served():
    database = Database()
    database.execute_script(
        "CREATE TABLE t (a INTEGER, b FLOAT, PRIMARY KEY (a));"
        "INSERT INTO t VALUES (1, 0.5), (2, 1.5), (3, 2.5);"
        "ANALYZE t"
    )
    handle = start_server_thread(database)
    yield database, handle.address
    handle.stop()


class TestQueryRoundTrip:
    def test_select_with_parameters(self, served):
        _, (host, port) = served
        with connect(host, port) as conn:
            rows = conn.cursor().execute("SELECT a, b FROM t WHERE b > $1", (0.9,)).fetchall()
        assert rows == [(2, 1.5), (3, 2.5)]

    def test_ddl_dml_roundtrip(self, served):
        _, (host, port) = served
        with connect(host, port) as conn:
            cur = conn.cursor()
            cur.execute("CREATE TABLE u (x INTEGER, y STRING)")
            assert cur.result.statement == "create table"
            cur.execute("INSERT INTO u VALUES (1, 'one'), (2, 'two')")
            assert cur.rowcount == 2
            rows = cur.execute("SELECT y FROM u WHERE x = $1", (2,)).fetchall()
            assert rows == [("two",)]

    def test_executemany_over_the_wire(self, served):
        _, (host, port) = served
        with connect(host, port) as conn:
            cur = conn.cursor()
            cur.execute("CREATE TABLE m (v INTEGER)")
            cur.executemany("INSERT INTO m VALUES (?)", [(i,) for i in range(5)])
            assert cur.rowcount == 5
            assert len(cur.execute("SELECT v FROM m").fetchall()) == 5

    def test_executescript_over_the_wire(self, served):
        _, (host, port) = served
        with connect(host, port) as conn:
            results = conn.executescript(
                "CREATE TABLE s (k INTEGER); INSERT INTO s VALUES (9); SELECT k FROM s"
            )
            assert [r.statement for r in results] == ["create table", "insert", "select"]
            assert results[-1].rows == [{"s.k": 9}]

    def test_explain_analyze_renders_remotely(self, served):
        _, (host, port) = served
        with connect(host, port) as conn:
            cur = conn.cursor().execute("EXPLAIN ANALYZE SELECT a FROM t WHERE b > 1.0")
            lines = [line for (line,) in cur]
            assert any("engine:" in line for line in lines)
            assert cur.result.statement == "explain analyze"

    def test_large_results_page_through_fetch_frames(self, served):
        database, (host, port) = served
        with connect(host, port) as conn:
            cur = conn.cursor()
            cur.execute("CREATE TABLE big (n INTEGER)")
            cur.executemany("INSERT INTO big VALUES (?)", [(i,) for i in range(1400)])
            rows = cur.execute("SELECT n FROM big").fetchall()
        # 1400 rows > the server's 512-row inline threshold: the client pulled
        # the tail through fetch frames and reassembled the full set.
        assert len(rows) == 1400
        assert sorted(n for (n,) in rows) == list(range(1400))

    def test_script_results_spool_through_fetch_frames(self, served):
        # A large SELECT inside a script spools exactly like a single query
        # (instead of inlining everything and risking an oversized frame);
        # the client reassembles each payload through fetch paging.
        _, (host, port) = served
        with connect(host, port) as conn:
            cur = conn.cursor()
            cur.execute("CREATE TABLE sbig (n INTEGER)")
            cur.executemany("INSERT INTO sbig VALUES (?)", [(i,) for i in range(1300)])
            results = conn.executescript(
                "SELECT n FROM sbig; SELECT COUNT(*) FROM sbig"
            )
        assert [r.statement for r in results] == ["select", "select"]
        assert len(results[0].rows) == 1300
        assert sorted(row["sbig.n"] for row in results[0].rows) == list(range(1300))
        assert results[1].rows == [{"count(*)": 1300}]


class TestPreparedStatements:
    def test_prepare_execute(self, served):
        _, (host, port) = served
        with connect(host, port) as conn:
            statement = conn.prepare("SELECT a FROM t WHERE b > $1", (0.0,))
            assert statement.parameter_count == 1
            first = statement.execute((2.0,))
            second = statement.execute((0.0,))
        assert first.rows == [{"t.a": 3}]
        assert len(second.rows) == 3
        assert second.from_cache

    def test_unknown_statement_id_errors(self, served):
        _, (host, port) = served
        with connect(host, port) as conn:
            statement = conn.prepare("SELECT a FROM t")
            statement.statement_id = 999
            with pytest.raises(SqlError, match="unknown prepared statement"):
                statement.execute()

    def test_arity_errors_cross_the_wire(self, served):
        _, (host, port) = served
        with connect(host, port) as conn:
            statement = conn.prepare("SELECT a FROM t WHERE b > $1")
            with pytest.raises(SqlError, match="expects 1 parameter"):
                statement.execute()


class TestErrorFrames:
    def test_binding_error_reconstructs_class_and_caret(self, served):
        _, (host, port) = served
        with connect(host, port) as conn:
            with pytest.raises(SqlBindingError) as excinfo:
                conn.execute("SELECT nope FROM t")
        message = str(excinfo.value)
        assert excinfo.value.bare_message.startswith("unknown column 'nope'")
        assert excinfo.value.position == (1, 8)
        assert "SELECT nope FROM t" in message
        # the caret points at the offending token, exactly like in-process
        assert "\n         ^" in message

    def test_syntax_error_reconstructs(self, served):
        _, (host, port) = served
        with connect(host, port) as conn:
            with pytest.raises(SqlSyntaxError):
                conn.execute("SELEKT a FROM t")

    def test_connection_survives_errors(self, served):
        _, (host, port) = served
        with connect(host, port) as conn:
            with pytest.raises(SqlError):
                conn.execute("SELECT nope FROM t")
            rows = conn.cursor().execute("SELECT a FROM t WHERE a = 1").fetchall()
            assert rows == [(1,)]

    def test_payload_round_trip_is_lossless(self):
        try:
            raise SqlBindingError("boom", (2, 5), "line one\nfour boom")
        except SqlBindingError as error:
            payload = error_payload(error)
            with pytest.raises(SqlBindingError) as excinfo:
                raise_error_payload(payload)
            assert str(excinfo.value) == str(error)


class TestSharedServingState:
    def test_two_connections_share_the_plan_cache(self, served):
        database, (host, port) = served
        sql = "SELECT a FROM t WHERE b > $1"
        with connect(host, port) as first:
            first.cursor().execute(sql, (0.9,))
        hits_before = database.plan_cache.stats()["hits"]
        with connect(host, port) as second:
            cur = second.cursor().execute(sql, (0.1,))
            assert cur.result.from_cache
        assert database.plan_cache.stats()["hits"] == hits_before + 1

    def test_each_wire_connection_gets_its_own_session(self, served):
        database, (host, port) = served
        with connect(host, port) as first, connect(host, port) as second:
            assert first.session_id != second.session_id
            first.execute("SELECT a FROM t WHERE b > 0.9")
            second.execute("SELECT a FROM t WHERE b > 0.9")
        assert {first.session_id, second.session_id} <= set(
            database.monitor.session_names()
        )

    def test_stats_tables_refresh_frames(self, served):
        _, (host, port) = served
        with connect(host, port) as conn:
            conn.execute("SELECT a FROM t WHERE b > 0.9")
            assert "t" in conn.tables()
            stats = conn.stats()
            assert stats["tables"]["t"] == 3
            assert conn.refresh_cached_plans() >= 0

    def test_concurrent_wire_clients(self, served):
        _, (host, port) = served
        errors = []

        def client(value):
            def run():
                try:
                    with connect(host, port) as conn:
                        for _ in range(10):
                            rows = conn.cursor().execute(
                                "SELECT a FROM t WHERE a = $1", (value,)
                            ).fetchall()
                            assert rows == [(value,)]
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            return run

        threads = [threading.Thread(target=client(1 + i % 3)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[:3]


class TestProtocolRobustness:
    def test_unknown_frame_type_errors_but_keeps_connection(self, served):
        _, (host, port) = served
        with connect(host, port) as conn:
            with pytest.raises(SqlError, match="unknown frame type"):
                conn._request({"type": "mystery"})
            assert conn.cursor().execute("SELECT a FROM t WHERE a = 1").fetchall() == [(1,)]

    def test_unframeable_bytes_drop_the_connection(self, served):
        import socket as socket_module

        _, (host, port) = served
        raw = socket_module.create_connection((host, port), timeout=5)
        try:
            raw.recv(4096)  # hello frame
            raw.sendall(b"\x00\x00\x00\x05notjs")
            # server drops the connection instead of replying
            assert raw.recv(4096) == b""
        finally:
            raw.close()

    def test_oversized_length_prefix_rejected(self, served):
        import socket as socket_module

        _, (host, port) = served
        raw = socket_module.create_connection((host, port), timeout=5)
        try:
            raw.recv(4096)
            raw.sendall(b"\xff\xff\xff\xff")
            assert raw.recv(4096) == b""
        finally:
            raw.close()

    def test_frames_encode_compactly(self):
        frame = encode_frame({"type": "query", "sql": "SELECT 1"})
        assert frame[:4] == len(frame[4:]).to_bytes(4, "big")
