"""Connection pool and statement executor pool."""

import threading

import pytest

from repro.api.database import Database
from repro.common.errors import SqlError
from repro.server.pool import ConnectionPool, StatementExecutorPool


@pytest.fixture()
def database():
    db = Database()
    db.execute_script(
        "CREATE TABLE t (a INTEGER, b INTEGER);"
        "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30);"
        "ANALYZE t"
    )
    return db


class TestConnectionPool:
    def test_lease_returns_connection_to_pool(self, database):
        pool = ConnectionPool(database, size=2)
        with pool.lease() as connection:
            assert connection.database is database
            assert pool.idle == 1
        assert pool.idle == 2
        assert pool.leases == 1

    def test_exhaustion_blocks_until_release(self, database):
        pool = ConnectionPool(database, size=1)
        first = pool.acquire()
        obtained = []

        def waiter():
            with pool.lease(timeout=5):
                obtained.append(True)

        thread = threading.Thread(target=waiter)
        thread.start()
        assert not obtained  # the one connection is still leased
        pool.release(first)
        thread.join(timeout=5)
        assert obtained == [True]

    def test_exhaustion_timeout_raises(self, database):
        pool = ConnectionPool(database, size=1)
        pool.acquire()
        with pytest.raises(SqlError, match="no pooled connection"):
            pool.acquire(timeout=0.05)

    def test_pool_size_validated(self, database):
        with pytest.raises(ValueError):
            ConnectionPool(database, size=0)

    def test_closed_pool_rejects_acquire(self, database):
        pool = ConnectionPool(database, size=1)
        pool.close()
        with pytest.raises(SqlError, match="closed"):
            pool.acquire()

    def test_release_after_close_closes_the_connection(self, database):
        # close() can only drain connections that are idle at that moment; a
        # connection leased across the close must be closed on release, not
        # re-queued open (and unreachable) forever.
        pool = ConnectionPool(database, size=2)
        leased = pool.acquire()
        pool.close()
        assert not leased.closed
        pool.release(leased)
        assert leased.closed
        assert pool.idle == 0


class TestStatementExecutorPool:
    def test_submit_runs_on_worker_thread(self, database):
        executor = StatementExecutorPool(database, workers=2)
        try:
            future = executor.submit("SELECT a FROM t WHERE b > $1", (15,))
            rows = future.result(timeout=10).rows
            assert sorted(row["t.a"] for row in rows) == [2, 3]
        finally:
            executor.shutdown()

    def test_errors_propagate_through_future(self, database):
        executor = StatementExecutorPool(database, workers=1)
        try:
            future = executor.submit("SELECT nope FROM t")
            with pytest.raises(SqlError, match="nope"):
                future.result(timeout=10)
        finally:
            executor.shutdown()

    def test_concurrent_submissions_share_plan_cache(self, database):
        executor = StatementExecutorPool(database, workers=4)
        try:
            futures = [
                executor.submit("SELECT a FROM t WHERE b = $1", (10 * (1 + i % 3),))
                for i in range(24)
            ]
            for future in futures:
                assert future.result(timeout=10).rowcount == 1
        finally:
            executor.shutdown()
        cache = database.plan_cache.stats()
        assert cache["entries"] == 1
        assert cache["hits"] == 23

    def test_caller_session_scopes_feedback(self, database):
        executor = StatementExecutorPool(database, workers=2)
        try:
            executor.submit("SELECT a FROM t WHERE b = 10", session="alpha").result(10)
            executor.submit("SELECT a FROM t WHERE b = 20", session="beta").result(10)
        finally:
            executor.shutdown()
        assert {"alpha", "beta"} <= set(database.monitor.session_names())

    def test_writes_through_pool_are_atomic_batches(self, database):
        executor = StatementExecutorPool(database, workers=4)
        try:
            futures = [
                executor.submit(f"INSERT INTO t VALUES ({100 + i}, {i}), ({200 + i}, {i})")
                for i in range(20)
            ]
            for future in futures:
                assert future.result(timeout=10).rowcount == 2
        finally:
            executor.shutdown()
        count = database.execute("SELECT COUNT(*) FROM t").rows[0]["count(*)"]
        assert count == 3 + 40
