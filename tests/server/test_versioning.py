"""Copy-on-write versioned table snapshots."""

import threading

import pytest

from repro.common.errors import SchemaError
from repro.relational.schema import Index
from repro.storage.indexes import OrderedIndex
from repro.storage.table import StoredTable
from repro.storage.versioning import TableVersion, VersionedTable


def make_versioned(rows=None):
    table = StoredTable.with_columns(["a", "b"])
    if rows:
        table.append_rows(rows)
    return VersionedTable(table)


class TestSnapshots:
    def test_fresh_table_is_version_zero(self):
        versioned = make_versioned()
        assert versioned.version == 0
        assert versioned.row_count == 0

    def test_append_publishes_new_version(self):
        versioned = make_versioned()
        versioned.append_rows([{"a": 1, "b": 2}])
        assert versioned.version == 1
        assert versioned.row_count == 1

    def test_snapshot_is_frozen_across_appends(self):
        versioned = make_versioned([{"a": 1, "b": 2}])
        before = versioned.snapshot()
        versioned.append_rows([{"a": 3, "b": 4}])
        assert before.row_count == 1
        assert versioned.snapshot().row_count == 2
        assert versioned.snapshot() is not before

    def test_version_increments_once_per_batch(self):
        versioned = make_versioned()
        for batch in range(5):
            versioned.append_rows([{"a": batch, "b": 0}, {"a": batch + 100, "b": 1}])
        assert versioned.version == 5
        assert versioned.row_count == 10

    def test_current_pairs_version_and_table(self):
        versioned = make_versioned([{"a": 1, "b": 2}])
        current = versioned.current
        assert isinstance(current, TableVersion)
        assert current.version == versioned.version
        assert current.table.row_count == 1


class TestIndexVersioning:
    def index(self, column="a", kind="hash", unique=False, name=None):
        return Index(
            name=name or f"idx_t_{column}",
            table="t",
            column=column,
            kind=kind,
            unique=unique,
        )

    def test_create_index_publishes_new_version(self):
        versioned = make_versioned([{"a": 1, "b": 2}])
        before = versioned.snapshot()
        versioned.create_index(self.index())
        assert versioned.version == 1
        assert "idx_t_a" in versioned.snapshot().indexes
        assert "idx_t_a" not in before.indexes

    def test_indexes_cloned_not_shared_across_versions(self):
        versioned = make_versioned([{"a": 1, "b": 2}])
        versioned.create_index(self.index())
        old_index = versioned.snapshot().indexes["idx_t_a"]
        versioned.append_rows([{"a": 7, "b": 8}])
        new_index = versioned.snapshot().indexes["idx_t_a"]
        assert new_index is not old_index
        assert old_index.entry_count == 1
        assert new_index.entry_count == 2
        assert new_index.lookup(7) == [1]

    def test_failed_unique_append_publishes_nothing(self):
        versioned = make_versioned([{"a": 1, "b": 2}])
        versioned.create_index(self.index(unique=True, kind="ordered"))
        version_before = versioned.version
        with pytest.raises(SchemaError):
            versioned.append_rows([{"a": 1, "b": 9}])
        assert versioned.version == version_before
        assert versioned.row_count == 1
        assert versioned.snapshot().indexes["idx_t_a"].entry_count == 1

    def test_drop_index_missing_publishes_nothing(self):
        versioned = make_versioned()
        assert versioned.drop_index("nope") is False
        assert versioned.version == 0

    def test_drop_index_publishes_and_keeps_old_snapshot(self):
        versioned = make_versioned([{"a": 1, "b": 2}])
        versioned.create_index(self.index())
        before = versioned.snapshot()
        assert versioned.drop_index("idx_t_a") is True
        assert "idx_t_a" in before.indexes
        assert "idx_t_a" not in versioned.snapshot().indexes


class TestPublishedSnapshotsAreSealed:
    """Published versions must never mutate themselves lazily.

    An :class:`OrderedIndex` defers its sort until the first lookup; if a
    published snapshot still carried an unsorted tail, two concurrent reader
    lookups could race that lazy sort and pair newly-sorted keys with stale
    row ids.  :meth:`VersionedTable._publish` therefore seals every index
    (forces the sort) under the write lock, before the version becomes
    visible.
    """

    def ordered_meta(self):
        return Index(name="idx_t_a", table="t", column="a", kind="ordered")

    def sealed(self, index):
        return index._sorted_until == len(index._keys)

    def test_append_publishes_fully_sorted_ordered_index(self):
        versioned = make_versioned([{"a": 5, "b": 0}])
        versioned.create_index(self.ordered_meta())
        # Appends extend the arrays out of order; publication must sort.
        versioned.append_rows([{"a": 3, "b": 0}, {"a": 9, "b": 0}, {"a": 1, "b": 0}])
        index = versioned.snapshot().indexes["idx_t_a"]
        assert self.sealed(index)
        assert index._keys == sorted(index._keys)

    def test_adopted_table_is_sealed_on_wrap(self):
        table = StoredTable.with_columns(["a", "b"])
        table.create_index(self.ordered_meta())
        table.append_rows([{"a": 4, "b": 0}, {"a": 2, "b": 0}])  # unsorted tail
        versioned = VersionedTable(table)
        assert self.sealed(versioned.snapshot().indexes["idx_t_a"])

    def test_concurrent_lookups_on_unsealed_index_stay_consistent(self):
        """The sort-lock backstop: racing lazy sorts never mix key/row-id halves."""
        errors = []
        for _ in range(20):
            index = OrderedIndex(self.ordered_meta())
            # Deliberately unsorted, unsealed: row id i holds key 999 - i.
            index.insert_values([999 - i for i in range(1000)], 0)
            start = threading.Barrier(8)

            def prober():
                try:
                    start.wait()
                    for key in (0, 250, 500, 750, 999):
                        assert index.lookup(key) == [999 - key], key
                except Exception as error:  # noqa: BLE001
                    errors.append(error)

            threads = [threading.Thread(target=prober) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors, errors[:3]
