"""Copy-on-write versioned table snapshots."""

import pytest

from repro.common.errors import SchemaError
from repro.relational.schema import Index
from repro.storage.table import StoredTable
from repro.storage.versioning import TableVersion, VersionedTable


def make_versioned(rows=None):
    table = StoredTable.with_columns(["a", "b"])
    if rows:
        table.append_rows(rows)
    return VersionedTable(table)


class TestSnapshots:
    def test_fresh_table_is_version_zero(self):
        versioned = make_versioned()
        assert versioned.version == 0
        assert versioned.row_count == 0

    def test_append_publishes_new_version(self):
        versioned = make_versioned()
        versioned.append_rows([{"a": 1, "b": 2}])
        assert versioned.version == 1
        assert versioned.row_count == 1

    def test_snapshot_is_frozen_across_appends(self):
        versioned = make_versioned([{"a": 1, "b": 2}])
        before = versioned.snapshot()
        versioned.append_rows([{"a": 3, "b": 4}])
        assert before.row_count == 1
        assert versioned.snapshot().row_count == 2
        assert versioned.snapshot() is not before

    def test_version_increments_once_per_batch(self):
        versioned = make_versioned()
        for batch in range(5):
            versioned.append_rows([{"a": batch, "b": 0}, {"a": batch + 100, "b": 1}])
        assert versioned.version == 5
        assert versioned.row_count == 10

    def test_current_pairs_version_and_table(self):
        versioned = make_versioned([{"a": 1, "b": 2}])
        current = versioned.current
        assert isinstance(current, TableVersion)
        assert current.version == versioned.version
        assert current.table.row_count == 1


class TestIndexVersioning:
    def index(self, column="a", kind="hash", unique=False, name=None):
        return Index(
            name=name or f"idx_t_{column}",
            table="t",
            column=column,
            kind=kind,
            unique=unique,
        )

    def test_create_index_publishes_new_version(self):
        versioned = make_versioned([{"a": 1, "b": 2}])
        before = versioned.snapshot()
        versioned.create_index(self.index())
        assert versioned.version == 1
        assert "idx_t_a" in versioned.snapshot().indexes
        assert "idx_t_a" not in before.indexes

    def test_indexes_cloned_not_shared_across_versions(self):
        versioned = make_versioned([{"a": 1, "b": 2}])
        versioned.create_index(self.index())
        old_index = versioned.snapshot().indexes["idx_t_a"]
        versioned.append_rows([{"a": 7, "b": 8}])
        new_index = versioned.snapshot().indexes["idx_t_a"]
        assert new_index is not old_index
        assert old_index.entry_count == 1
        assert new_index.entry_count == 2
        assert new_index.lookup(7) == [1]

    def test_failed_unique_append_publishes_nothing(self):
        versioned = make_versioned([{"a": 1, "b": 2}])
        versioned.create_index(self.index(unique=True, kind="ordered"))
        version_before = versioned.version
        with pytest.raises(SchemaError):
            versioned.append_rows([{"a": 1, "b": 9}])
        assert versioned.version == version_before
        assert versioned.row_count == 1
        assert versioned.snapshot().indexes["idx_t_a"].entry_count == 1

    def test_drop_index_missing_publishes_nothing(self):
        versioned = make_versioned()
        assert versioned.drop_index("nope") is False
        assert versioned.version == 0

    def test_drop_index_publishes_and_keeps_old_snapshot(self):
        versioned = make_versioned([{"a": 1, "b": 2}])
        versioned.create_index(self.index())
        before = versioned.snapshot()
        assert versioned.drop_index("idx_t_a") is True
        assert "idx_t_a" in before.indexes
        assert "idx_t_a" not in versioned.snapshot().indexes
