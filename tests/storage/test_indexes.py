"""Unit tests for the physical index structures."""

import pytest

from repro.common.errors import SchemaError
from repro.relational.schema import Index
from repro.storage.indexes import HashIndex, OrderedIndex, build_index, select_index


def meta(kind="ordered", name="idx", column="c"):
    return Index(name, "t", column, kind=kind)


class TestHashIndex:
    def test_point_lookup_row_id_order(self):
        index = HashIndex(meta("hash"))
        index.insert_values([5, 3, 5, None, 3, 5], 0)
        assert index.lookup(5) == [0, 2, 5]
        assert index.lookup(3) == [1, 4]
        assert index.lookup(99) == []

    def test_null_probe_matches_null_rows(self):
        """Join-probe semantics: a NULL probe key matches NULL build keys,
        exactly like the engines' hash joins."""
        index = HashIndex(meta("hash"))
        index.insert_values([1, None, 2, None], 0)
        assert index.lookup(None) == [1, 3]

    def test_incremental_insert_offsets(self):
        index = HashIndex(meta("hash"))
        index.insert_values([1, 2], 0)
        index.insert_values([2, 1], 2)
        assert index.lookup(1) == [0, 3]
        assert index.lookup(2) == [1, 2]

    def test_entry_and_null_counts(self):
        index = HashIndex(meta("hash"))
        index.insert_values([1, None, 1], 0)
        assert index.entry_count == 2
        assert index.null_count == 1

    def test_int_float_key_equivalence(self):
        """1 and 1.0 hash alike, matching the == comparator semantics of a
        sequential scan."""
        index = HashIndex(meta("hash"))
        index.insert_values([1, 2.0], 0)
        assert index.lookup(1.0) == [0]
        assert index.lookup(2) == [1]

    def test_no_range_support(self):
        assert HashIndex(meta("hash")).supports_range is False


class TestOrderedIndex:
    def build(self, values):
        index = OrderedIndex(meta())
        index.insert_values(values, 0)
        return index

    def test_point_lookup(self):
        index = self.build([30, 10, 20, 10, None])
        assert index.lookup(10) == [1, 3]
        assert index.lookup(30) == [0]
        assert index.lookup(11) == []
        assert index.lookup(None) == [4]

    def test_range_inclusive_exclusive_bounds(self):
        index = self.build([1, 2, 3, 4, 5])
        assert index.range(2, True, 4, True) == [1, 2, 3]
        assert index.range(2, False, 4, True) == [2, 3]
        assert index.range(2, True, 4, False) == [1, 2]
        assert index.range(2, False, 4, False) == [2]

    def test_open_sided_ranges(self):
        index = self.build([5, 1, 3])
        assert index.range(None, True, 3, True) == [1, 2]
        assert index.range(3, True, None, True) == [2, 0]
        assert index.range(None, True, None, True) == [1, 2, 0]

    def test_range_key_order_with_row_id_tiebreak(self):
        index = self.build([2, 1, 2, 1])
        # key order, ties resolved by stored position
        assert index.range(1, True, 2, True) == [1, 3, 0, 2]

    def test_empty_range(self):
        index = self.build([1, 2, 3])
        assert index.range(5, True, 9, True) == []
        assert index.range(3, False, 3, True) == []

    def test_ordered_iteration_nulls_last(self):
        index = self.build([None, 3, 1, None, 2])
        assert index.ordered_row_ids() == [2, 4, 1, 0, 3]
        assert index.ordered_row_ids(nulls_last=False) == [0, 3, 2, 4, 1]

    def test_lazy_resort_after_append(self):
        index = self.build([3, 1])
        index.insert_values([2, 0], 2)
        assert index.range(0, True, 2, True) == [3, 1, 2]
        assert index.lookup(3) == [0]

    def test_counts(self):
        index = self.build([1, None, 2])
        assert index.entry_count == 2
        assert index.null_count == 1
        assert index.supports_range is True

    def test_string_keys(self):
        index = self.build(["beta", "alpha", "gamma"])
        assert index.range("alpha", True, "beta", True) == [1, 0]


class TestBuildAndSelect:
    def test_build_index_dispatches_on_kind(self):
        assert isinstance(build_index(meta("hash"), [1]), HashIndex)
        assert isinstance(build_index(meta("ordered"), [1]), OrderedIndex)

    def test_unknown_kind_rejected_by_schema(self):
        with pytest.raises(SchemaError):
            Index("idx", "t", "c", kind="btree")

    def test_select_prefers_hash_for_points(self):
        ordered = meta("ordered", name="a_ordered")
        hashed = meta("hash", name="z_hash")
        assert select_index([ordered, hashed], "point") is hashed
        assert select_index([ordered, hashed], "range") is ordered
        assert select_index([ordered, hashed], "sorted") is ordered

    def test_select_hash_cannot_serve_ranges(self):
        assert select_index([meta("hash")], "range") is None
        assert select_index([meta("hash")], "sorted") is None
        assert select_index([], "point") is None

    def test_select_ties_break_on_name(self):
        first = meta("ordered", name="idx_a")
        second = meta("ordered", name="idx_b")
        assert select_index([second, first], "range") is first

    def test_select_unknown_shape(self):
        with pytest.raises(ValueError):
            select_index([meta()], "bitmap")
