"""Unit tests for the typed column buffers (:mod:`repro.storage.buffers`).

The contract under test: a :class:`TypedColumn` behaves exactly like the
plain Python list it replaces (list protocol, NULLs as ``None``), mutations
are atomic (a failed batch leaves the column untouched so the store can
demote to a list), and every filter kernel either returns exactly what the
brute-force Python loop would — mixed int/float comparison semantics
included — or returns ``None`` to make the caller run that loop.
"""

import operator
import random

import pytest

from repro.engine.vectorized.columns import ColumnTable
from repro.storage import buffers
from repro.storage.buffers import (
    FLOAT,
    INT,
    BufferTypeError,
    TypedColumn,
    column_kinds,
    column_values,
    copy_column,
    gather_values,
    kind_for_type,
    make_column,
)

OPS = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def brute_compare(column, op, constant, indices, flipped=False):
    """The exact-Python reference the kernels must reproduce."""
    out = []
    for i in indices:
        value = column[i]
        if value is None:
            continue
        hit = OPS[op](constant, value) if flipped else OPS[op](value, constant)
        if hit:
            out.append(i)
    return out


@pytest.fixture
def int_column():
    column = TypedColumn(INT)
    column.extend([5, None, -3, 12, 0, None, 7, 12])
    return column


@pytest.fixture
def float_column():
    column = TypedColumn(FLOAT)
    column.extend([0.5, None, -2.25, 12.0, 0.0, 7.5])
    return column


# ---------------------------------------------------------------------------
# construction + list protocol
# ---------------------------------------------------------------------------


def test_kind_mapping():
    assert kind_for_type("INTEGER") == INT
    assert kind_for_type("DATE") == INT
    assert kind_for_type("FLOAT") == FLOAT
    assert kind_for_type("STRING") is None
    assert kind_for_type(None) is None
    assert isinstance(make_column(INT), TypedColumn)
    assert make_column(None) == []


def test_column_kinds_accepts_enums_and_strings():
    class FakeType:
        name = "INTEGER"

    kinds = column_kinds(["a", "b", "c"], [FakeType(), "FLOAT", "STRING"])
    assert kinds == {"a": INT, "b": FLOAT, "c": None}


def test_list_protocol(int_column):
    expected = [5, None, -3, 12, 0, None, 7, 12]
    assert len(int_column) == len(expected)
    assert list(int_column) == expected
    assert int_column.tolist() == expected
    assert [int_column[i] for i in range(len(expected))] == expected
    assert int_column[-1] == 12
    assert int_column[1:4] == [None, -3, 12]
    assert int_column.null_count == 2


def test_contains_ignores_null_placeholder():
    column = TypedColumn(INT)
    column.extend([None, 5])  # the NULL row stores a 0 placeholder
    assert 0 not in column
    assert 5 in column
    assert None in column
    assert "five" not in column
    no_nulls = TypedColumn(INT)
    no_nulls.extend([1, 2])
    assert None not in no_nulls


def test_copy_is_independent(int_column):
    clone = int_column.copy()
    clone.append(99)
    assert len(clone) == len(int_column) + 1
    assert 99 not in int_column
    assert clone.tolist()[: len(int_column)] == int_column.tolist()


# ---------------------------------------------------------------------------
# mutation: exact typing, atomicity, demotion
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kind, bad",
    [
        (INT, 1.5),
        (INT, "x"),
        (INT, True),  # bool must not collapse into 0/1
        (INT, 2**63),  # int64 overflow
        (FLOAT, "x"),
        (FLOAT, False),
        (FLOAT, 2**53 + 1),  # int that does not round-trip through float64
    ],
)
def test_extend_rejects_unrepresentable_values(kind, bad):
    column = TypedColumn(kind)
    column.extend([1, 2] if kind == INT else [1.0, 2.0])
    before = column.tolist()
    with pytest.raises(BufferTypeError):
        column.extend([3, bad] if kind == INT else [3.0, bad])
    # atomic: the valid prefix of the failed batch must not have landed
    assert column.tolist() == before


def test_float_column_coerces_exact_ints():
    column = TypedColumn(FLOAT)
    column.extend([1, 2.5, 2**53])
    assert column.tolist() == [1.0, 2.5, float(2**53)]
    assert all(type(value) is float for value in column.tolist())


def test_column_table_demotes_on_off_type_batch():
    table = ColumnTable.with_columns(["a"], kinds={"a": INT})
    table.append_rows([{"a": 1}, {"a": 2}])
    assert isinstance(table.columns["a"], TypedColumn)
    table.append_rows([{"a": 3}, {"a": "oops"}])
    demoted = table.columns["a"]
    assert isinstance(demoted, list)
    assert demoted == [1, 2, 3, "oops"]


# ---------------------------------------------------------------------------
# gather + duck-typed helpers
# ---------------------------------------------------------------------------


def test_gather_range_fancy_and_nulls(int_column):
    expected = int_column.tolist()
    assert int_column.gather(range(2, 6)) == expected[2:6]
    picks = [7, 0, 3, 3]
    assert int_column.gather(picks) == [expected[i] for i in picks]
    many = list(range(len(int_column))) * 20  # trips the fancy-index path
    assert int_column.gather(many) == [expected[i] for i in many]


def test_helpers_work_on_both_representations(int_column):
    as_list = int_column.tolist()
    assert column_values(int_column) == as_list
    assert column_values(as_list) is as_list
    assert gather_values(int_column, [0, 2]) == gather_values(as_list, [0, 2])
    typed_copy = copy_column(int_column)
    list_copy = copy_column(as_list)
    assert isinstance(typed_copy, TypedColumn)
    assert isinstance(list_copy, list)
    assert typed_copy.tolist() == list_copy


# ---------------------------------------------------------------------------
# filter kernels vs the brute-force reference
# ---------------------------------------------------------------------------

INT_CONSTANTS = [0, 5, 12, -3, 2.5, -0.5, 12.0, float("nan"), float("inf"), 2**64]
FLOAT_CONSTANTS = [0.0, 0.5, -2.25, 7, 2**53, float("inf"), float("nan"), 2**53 + 1]


@pytest.mark.parametrize("op", sorted(OPS))
@pytest.mark.parametrize("flipped", [False, True])
def test_filter_compare_matches_python_semantics(op, flipped, int_column, float_column):
    for column, constants in ((int_column, INT_CONSTANTS), (float_column, FLOAT_CONSTANTS)):
        indices = range(len(column))
        for constant in constants:
            got = column.filter_compare(op, constant, indices, flipped)
            if got is None:
                continue  # kernel bailed; callers run the exact loop
            assert got == brute_compare(column, op, constant, indices, flipped), (
                column.kind,
                op,
                constant,
                flipped,
            )


def test_filter_compare_bails_where_exactness_is_at_risk(int_column, float_column):
    indices = range(len(int_column))
    assert int_column.filter_compare("<", float("nan"), indices) is None
    assert int_column.filter_compare("<", 2**64, indices) is None
    assert float_column.filter_compare("=", 2**53 + 1, range(len(float_column))) is None
    assert int_column.filter_compare("<", "abc", indices) is None


def test_filter_compare_fractional_constant_rewrite(int_column):
    indices = range(len(int_column))
    # 2.5 against int64 rows: <, <=, >, >=, =, != all have exact rewrites
    assert int_column.filter_compare("=", 2.5, indices) == []
    assert int_column.filter_compare("!=", 2.5, indices) == brute_compare(
        int_column, "!=", 2.5, indices
    )
    for op in ("<", "<=", ">", ">="):
        assert int_column.filter_compare(op, 2.5, indices) == brute_compare(
            int_column, op, 2.5, indices
        )


def test_filter_between(int_column):
    indices = range(len(int_column))
    for low, high, negated in [(0, 12, False), (0, 12, True), (-5.5, 6.5, False)]:
        got = int_column.filter_between(low, high, negated, indices)
        expected = [
            i
            for i in indices
            if int_column[i] is not None
            and ((low <= int_column[i] <= high) ^ negated)
        ]
        assert got == expected, (low, high, negated)


def test_filter_in(int_column, float_column):
    indices = range(len(int_column))
    pool = frozenset({5, 12.0, "x", 2.5, float("nan")})
    got = int_column.filter_in(pool, False, indices)
    expected = [i for i in indices if int_column[i] is not None and int_column[i] in pool]
    assert got == expected
    assert int_column.filter_in(pool, True, indices) == [
        i for i in indices if int_column[i] is not None and int_column[i] not in pool
    ]
    # a pool with an unrepresentable int bails entirely for INT columns
    assert int_column.filter_in(frozenset({5, 2**64}), False, indices) is None
    # for FLOAT columns a non-representable int simply never matches
    f_indices = range(len(float_column))
    assert float_column.filter_in(frozenset({0.5, 2**53 + 1}), False, f_indices) == [
        i for i in f_indices if float_column[i] == 0.5
    ]


def test_filter_null(int_column):
    indices = range(len(int_column))
    assert int_column.filter_null(True, indices) == [1, 5]
    assert int_column.filter_null(False, indices) == [0, 2, 3, 4, 6, 7]
    dense = TypedColumn(INT)
    dense.extend([1, 2, 3])
    assert dense.filter_null(True, range(3)) == []
    assert dense.filter_null(False, range(3)) == [0, 1, 2]


def test_filter_compare_with(int_column):
    other = TypedColumn(INT)
    other.extend([5, 1, -3, None, 2, 9, 6, 12])
    indices = range(len(int_column))
    for op in sorted(OPS):
        got = int_column.filter_compare_with(other, op, indices)
        expected = [
            i
            for i in indices
            if int_column[i] is not None
            and other[i] is not None
            and OPS[op](int_column[i], other[i])
        ]
        assert got == expected, op
    # mixed kinds refuse (int64 vs float64 promotion could round)
    floats = TypedColumn(FLOAT)
    floats.extend([1.0] * len(int_column))
    assert int_column.filter_compare_with(floats, "<", indices) is None


def test_kernels_respect_subset_indices(int_column):
    subset = [0, 3, 6, 7]
    assert int_column.filter_compare("=", 12, subset) == brute_compare(
        int_column, "=", 12, subset
    )
    assert int_column.filter_compare(">", 4, range(2, 7)) == brute_compare(
        int_column, ">", 4, range(2, 7)
    )


@pytest.mark.skipif(buffers._np is None, reason="numpy-specific fallback check")
def test_kernels_fall_back_without_numpy(monkeypatch, int_column):
    """With numpy gone every kernel bails except the mask-only NULL filter."""
    indices = range(len(int_column))
    with_numpy = int_column.filter_compare("<", 6, indices)
    monkeypatch.setattr(buffers, "_np", None)
    assert int_column.filter_compare("<", 6, indices) is None
    assert int_column.filter_between(0, 10, False, indices) is None
    assert int_column.filter_in(frozenset({5}), False, indices) is None
    assert int_column.filter_compare_with(int_column, "=", indices) is None
    assert int_column.filter_null(True, indices) == [1, 5]
    assert int_column.gather(range(2, 6)) == int_column.tolist()[2:6]
    monkeypatch.undo()
    assert with_numpy == brute_compare(int_column, "<", 6, indices)


def test_randomized_kernel_equivalence():
    rng = random.Random(42)
    column = TypedColumn(INT)
    column.extend(
        [None if rng.random() < 0.2 else rng.randint(-50, 50) for _ in range(500)]
    )
    indices = range(len(column))
    for _ in range(200):
        op = rng.choice(sorted(OPS))
        constant = rng.choice(
            [rng.randint(-60, 60), rng.uniform(-60.0, 60.0), rng.randint(-60, 60) + 0.5]
        )
        flipped = rng.random() < 0.3
        got = column.filter_compare(op, constant, indices, flipped)
        if got is not None:
            assert got == brute_compare(column, op, constant, indices, flipped), (
                op,
                constant,
                flipped,
            )
