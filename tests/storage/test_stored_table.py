"""StoredTable: index maintenance under appends, lookup preference rules."""

import pytest

from repro.common.errors import SchemaError
from repro.engine.vectorized.columns import ColumnTable
from repro.relational.schema import Index
from repro.storage.table import StoredTable


def make_table():
    table = StoredTable.with_columns(["k", "v"])
    table.append_rows([{"k": 1, "v": 10}, {"k": 2, "v": 20}])
    return table


class TestIndexLifecycle:
    def test_create_index_builds_from_existing_rows(self):
        table = make_table()
        index = table.create_index(Index("idx_k", "t", "k"))
        assert index.lookup(2) == [1]
        assert table.index("idx_k") is index

    def test_append_maintains_every_index(self):
        table = make_table()
        ordered = table.create_index(Index("idx_k", "t", "k"))
        hashed = table.create_index(Index("idx_v", "t", "v", kind="hash"))
        table.append_rows([{"k": 0, "v": 20}, {"k": 3, "v": None}])
        assert ordered.range(0, True, 1, True) == [2, 0]
        assert hashed.lookup(20) == [1, 2]
        assert hashed.null_count == 1
        assert table.row_count == 4

    def test_drop_index(self):
        table = make_table()
        table.create_index(Index("idx_k", "t", "k"))
        assert table.drop_index("idx_k") is True
        assert table.index("idx_k") is None
        assert table.drop_index("idx_k") is False

    def test_duplicate_or_unknown_column_rejected(self):
        table = make_table()
        table.create_index(Index("idx_k", "t", "k"))
        with pytest.raises(SchemaError):
            table.create_index(Index("idx_k", "t", "k"))
        with pytest.raises(SchemaError):
            table.create_index(Index("idx_zz", "t", "zz"))


class TestUsableIndex:
    def test_kind_preference_matches_catalog_rule(self):
        table = make_table()
        ordered = table.create_index(Index("idx_k_ord", "t", "k"))
        hashed = table.create_index(Index("idx_k_hash", "t", "k", kind="hash"))
        assert table.usable_index("k", "point") is hashed
        assert table.usable_index("k", "range") is ordered
        assert table.usable_index("k", "sorted") is ordered
        assert table.usable_index("v", "point") is None

    def test_hash_only_column_has_no_range_path(self):
        table = make_table()
        table.create_index(Index("idx_v", "t", "v", kind="hash"))
        assert table.usable_index("v", "point") is not None
        assert table.usable_index("v", "range") is None


class TestAdoption:
    def test_from_column_table_shares_arrays(self):
        source = ColumnTable.from_rows([{"k": 1}, {"k": 2}])
        adopted = StoredTable.from_column_table(source)
        assert adopted.columns["k"] is source.columns["k"]
        assert adopted.row_count == 2
        adopted.create_index(Index("idx_k", "t", "k"))
        assert adopted.index("idx_k").lookup(1) == [0]


class TestUniqueEnforcement:
    def test_unique_index_rejects_duplicate_appends(self):
        table = make_table()
        table.create_index(Index("idx_k", "t", "k", unique=True))
        with pytest.raises(SchemaError, match="unique index 'idx_k'"):
            table.append_rows([{"k": 1, "v": 99}])
        # the failed append left nothing behind
        assert table.row_count == 2
        assert table.index("idx_k").lookup(1) == [0]

    def test_unique_index_rejects_in_batch_duplicates(self):
        table = make_table()
        table.create_index(Index("idx_k", "t", "k", unique=True))
        with pytest.raises(SchemaError, match="duplicate value 7"):
            table.append_rows([{"k": 7, "v": 1}, {"k": 7, "v": 2}])
        assert table.row_count == 2

    def test_unique_index_allows_nulls(self):
        table = make_table()
        table.create_index(Index("idx_k", "t", "k", unique=True))
        table.append_rows([{"k": None, "v": 1}, {"k": None, "v": 2}])
        assert table.row_count == 4

    def test_unique_build_over_duplicates_rejected(self):
        table = make_table()
        table.append_rows([{"k": 1, "v": 30}])  # duplicates k=1
        with pytest.raises(SchemaError, match="duplicate values"):
            table.create_index(Index("idx_k", "t", "k", unique=True))
        assert table.index("idx_k") is None
