"""Unit coverage for the shared-memory column transport (`repro.storage.shm`).

Exercises the parent/worker contract in-process: export typed columns and
pickled list fallbacks into one segment, attach them back zero-copy, and
verify the lifecycle discipline (idempotent release, the live-export
registry, forced availability) that the process executor's leak guarantees
rest on.
"""

import pickle

import pytest

from repro.storage import shm
from repro.storage.buffers import TypedColumn

pytestmark = pytest.mark.skipif(
    not shm.shm_available(), reason="shared memory unavailable on this platform"
)


def int_column(values):
    column = TypedColumn("int")
    column.extend(values)
    return column


def float_column(values):
    column = TypedColumn("float")
    column.extend(values)
    return column


def test_typed_int_round_trip_with_nulls():
    column = int_column([1, None, 3, -(2**40), None])
    export = shm.export_columns({"a": column}, len(column))
    try:
        attached = shm.attach_columns(export.manifest)
        got = attached.columns["a"]
        assert isinstance(got, TypedColumn)
        assert got.kind == "int"
        assert got.null_count == 2
        assert list(got) == [1, None, 3, -(2**40), None]
        assert got[0:5] == [1, None, 3, -(2**40), None]
        assert attached.row_count == 5
        del got  # drop the view before unmapping
        attached.close()
    finally:
        export.release()


def test_typed_float_round_trip_bit_exact():
    values = [0.1, -0.0, None, 1e300, 2.5000000000000004]
    column = float_column(values)
    export = shm.export_columns({"v": column}, len(column))
    try:
        attached = shm.attach_columns(export.manifest)
        got = attached.columns["v"][0:5]
        assert repr(got) == repr(values)
        attached.close()
    finally:
        export.release()


def test_attach_is_zero_copy():
    """Attached typed columns view the segment directly — no materialized copy."""
    column = int_column(list(range(100)))
    export = shm.export_columns({"a": column}, 100)
    try:
        attached = shm.attach_columns(export.manifest)
        assert isinstance(attached.columns["a"].data, memoryview)
        assert isinstance(attached.columns["a"].mask, memoryview)
        attached.close()
    finally:
        export.release()


def test_list_column_pickled_fallback():
    values = ["x", None, "yy", 3]
    export = shm.export_columns({"s": values}, len(values))
    try:
        assert export.shm_bytes == 0
        assert export.pickled_bytes > 0
        attached = shm.attach_columns(export.manifest)
        got = attached.columns["s"]
        assert isinstance(got, list)
        assert got == values
        attached.close()
    finally:
        export.release()


def test_mixed_export_alignment_and_accounting():
    # A pickled blob first forces the typed region onto a padded offset.
    blob_column = ["odd-length-strings", "x"]
    typed = float_column([1.5, None, 2.5])
    export = shm.export_columns({"s": blob_column, "v": typed}, 3)
    try:
        specs = {spec[0]: spec for spec in export.manifest.specs}
        _, _, data_off, data_len, mask_off, mask_len, null_count = specs["v"]
        assert data_off % 8 == 0
        assert data_len == 3 * 8
        assert mask_len == 3
        assert null_count == 1
        assert export.shm_bytes == data_len + mask_len
        assert export.pickled_bytes == specs["s"][3]
        attached = shm.attach_columns(export.manifest)
        assert attached.columns["s"] == blob_column
        assert attached.columns["v"][0:3] == [1.5, None, 2.5]
        attached.close()
    finally:
        export.release()


def test_release_is_idempotent_and_unlinks():
    export = shm.export_columns({"a": int_column([1, 2, 3])}, 3)
    name = export.manifest.segment
    assert name in shm.live_export_names()
    export.release()
    assert name not in shm.live_export_names()
    export.release()  # second release is a no-op
    with pytest.raises(Exception):  # segment is gone: attach must fail
        shm.attach_columns(export.manifest)


def test_release_all_exports_clears_registry():
    exports = [shm.export_columns({"a": int_column([i])}, 1) for i in range(3)]
    names = {export.manifest.segment for export in exports}
    assert names <= set(shm.live_export_names())
    shm.release_all_exports()
    assert shm.live_export_names() == []
    for export in exports:
        export.release()  # already released: still a no-op


def test_set_shm_enabled_forces_availability():
    try:
        shm.set_shm_enabled(False)
        assert not shm.shm_available()
        shm.set_shm_enabled(True)
        assert shm.shm_available()
    finally:
        shm.set_shm_enabled(None)
    assert shm.shm_available()  # autodetect on this platform


def test_manifest_pickle_round_trip():
    column = int_column([7, None])
    export = shm.export_columns({"a": column}, 2)
    try:
        manifest = pickle.loads(pickle.dumps(export.manifest))
        assert manifest.segment == export.manifest.segment
        assert manifest.row_count == 2
        assert manifest.specs == export.manifest.specs
        attached = shm.attach_columns(manifest)
        assert list(attached.columns["a"]) == [7, None]
        attached.close()
    finally:
        export.release()
