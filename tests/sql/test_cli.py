"""Tests for the repro-sql console entry point."""

import io
import re

import pytest

from repro.sql.cli import build_session, main, run_statement


class TestBuildSession:
    def test_stats_only_session(self):
        session = build_session(scale=0.01, data_scale=None, seed=7)
        assert session.data is None

    def test_data_backed_session(self):
        session = build_session(scale=0.01, data_scale=0.0002, seed=7)
        assert session.data is not None
        assert "customer" in session.data


class TestRunStatement:
    def test_explain_prints_plan(self):
        session = build_session(scale=0.01, data_scale=None, seed=7)
        out = io.StringIO()
        run_statement(
            session,
            "EXPLAIN SELECT n_name FROM nation, region WHERE n_regionkey = r_regionkey",
            out=out,
        )
        assert "seq-scan" in out.getvalue()

    def test_select_prints_rows_and_count(self):
        session = build_session(scale=0.01, data_scale=0.0002, seed=7)
        out = io.StringIO()
        run_statement(session, "SELECT r_name FROM region LIMIT 2", out=out)
        text = out.getvalue()
        assert "region.r_name" in text
        assert "(2 rows)" in text


class TestMain:
    def test_command_mode_success(self, capsys):
        code = main(["-c", "EXPLAIN SELECT r_name FROM region"])
        assert code == 0
        assert "seq-scan" in capsys.readouterr().out

    def test_command_mode_sql_error(self, capsys):
        code = main(["-c", "SELECT nope FROM region"])
        assert code == 1
        assert "nope" in capsys.readouterr().err

    def test_command_mode_select_without_data_fails_cleanly(self, capsys):
        code = main(["-c", "SELECT r_name FROM region"])
        assert code == 1
        assert "no data loaded" in capsys.readouterr().err


class TestEngineFlag:
    def test_engine_row_reported_by_explain_analyze(self, capsys):
        code = main(
            [
                "--data-scale",
                "0.0002",
                "--engine",
                "row",
                "-c",
                "EXPLAIN ANALYZE SELECT r_name FROM region",
            ]
        )
        assert code == 0
        assert "engine: row" in capsys.readouterr().out

    def test_engine_defaults_to_vectorized(self, capsys):
        code = main(["--data-scale", "0.0002", "-c", "EXPLAIN ANALYZE SELECT r_name FROM region"])
        assert code == 0
        assert "engine: vectorized" in capsys.readouterr().out

    def test_batch_size_flag_accepted(self, capsys):
        code = main(
            [
                "--data-scale",
                "0.0002",
                "--batch-size",
                "16",
                "-c",
                "SELECT r_name FROM region LIMIT 1",
            ]
        )
        assert code == 0
        assert "(1 row)" in capsys.readouterr().out


class TestScripts:
    def test_semicolon_separated_script_shares_connection(self, capsys):
        code = main(
            [
                "--empty",
                "-c",
                "CREATE TABLE t (a INTEGER); "
                "INSERT INTO t VALUES (1), (2), (3); "
                "ANALYZE t; "
                "SELECT COUNT(*) FROM t",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ok: create table" in out
        assert "ok: insert (3 rows)" in out
        assert "(1 row)" in out  # the COUNT(*) result

    def test_file_flag_runs_script(self, tmp_path, capsys):
        script = tmp_path / "setup.sql"
        script.write_text(
            "CREATE TABLE t (a INTEGER, b FLOAT);\n"
            "INSERT INTO t VALUES (1, 0.5), (2, 1.5);\n"
            "ANALYZE t;\n"
            "EXPLAIN ANALYZE SELECT a FROM t WHERE b > 1.0;\n"
        )
        code = main(["--empty", "--file", str(script)])
        assert code == 0
        out = capsys.readouterr().out
        assert "actual_rows=" in out
        assert "engine: vectorized" in out

    def test_file_missing(self, capsys):
        code = main(["--empty", "--file", "/nonexistent/script.sql"])
        assert code == 1
        assert "cannot read" in capsys.readouterr().err

    def test_command_and_file_conflict(self, capsys):
        code = main(["-c", "SELECT 1", "--file", "x.sql"])
        assert code == 2

    def test_error_in_mid_script_stops(self, capsys):
        code = main(
            ["--empty", "-c", "CREATE TABLE t (a INTEGER); SELECT nope FROM t"]
        )
        assert code == 1
        assert "nope" in capsys.readouterr().err


class TestParameters:
    def test_param_flag_feeds_placeholders(self, capsys):
        code = main(
            [
                "--empty",
                "--param",
                "1",
                "-c",
                "CREATE TABLE t (a INTEGER); "
                "INSERT INTO t VALUES (1), (2), (3); "
                "ANALYZE t; "
                "SELECT a FROM t WHERE a > ?",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "(2 rows)" in out

    def test_param_values_typed(self):
        from repro.sql.cli import parse_parameter

        assert parse_parameter("3") == 3
        assert parse_parameter("2.5") == 2.5
        assert parse_parameter("abc") == "abc"

    def test_stats_flag_prints_plan_cache(self, capsys):
        code = main(
            [
                "--empty",
                "--stats",
                "-c",
                "CREATE TABLE t (a INTEGER); SELECT a FROM t; SELECT a FROM t",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan_cache:" in out
        assert re.search(r"\bhits\s+1\b", out)


class TestRunStatementCompat:
    def test_run_statement_handles_session_ddl_result(self):
        """run_statement still accepts a legacy Session, including for DDL
        results (SqlResult has no rowcount attribute)."""
        import io

        from repro.catalog.catalog import Catalog
        from repro.relational.schema import Schema
        from repro.sql.cli import run_statement
        from repro.sql.session import Session

        session = Session(Catalog(Schema()))
        out = io.StringIO()
        run_statement(session, "CREATE TABLE t (a INTEGER)", out=out)
        assert "ok: create table" in out.getvalue()


class TestSchemaMetaCommand:
    def _connection(self):
        import repro

        connection = repro.connect()
        connection.executescript(
            "CREATE TABLE orders (id INTEGER, region TEXT, qty INTEGER, "
            "price FLOAT, PRIMARY KEY (id)); "
            "CREATE TABLE tags (name TEXT)"
        )
        return connection

    def test_schema_all_tables(self, capsys):
        from repro.sql.cli import _meta_command

        assert _meta_command(self._connection(), ".schema")
        out = capsys.readouterr().out
        assert "orders:" in out and "tags:" in out
        assert "region  string" in out
        assert "price  float" in out
        assert "id  integer  primary key" in out

    def test_schema_single_table(self, capsys):
        from repro.sql.cli import _meta_command

        assert _meta_command(self._connection(), ".schema tags")
        captured = capsys.readouterr()
        assert "tags:" in captured.out
        assert "orders:" not in captured.out

    def test_schema_unknown_table(self, capsys):
        from repro.sql.cli import _meta_command

        assert _meta_command(self._connection(), ".schema nope")
        assert "unknown table 'nope'" in capsys.readouterr().err

    def test_unknown_meta_command_still_rejected(self):
        from repro.sql.cli import _meta_command

        assert not _meta_command(self._connection(), ".bogus")


class TestIndexesMetaCommand:
    def _connection(self):
        import repro

        connection = repro.connect()
        connection.executescript(
            "CREATE TABLE orders (id INTEGER, qty INTEGER, PRIMARY KEY (id)); "
            "CREATE TABLE tags (name TEXT); "
            "INSERT INTO orders VALUES (1, 5), (2, 7), (3, NULL); "
            "CREATE INDEX idx_orders_qty ON orders (qty) USING HASH"
        )
        return connection

    def test_indexes_lists_kind_and_entry_count(self, capsys):
        from repro.sql.cli import _meta_command

        assert _meta_command(self._connection(), ".indexes")
        out = capsys.readouterr().out
        assert "idx_orders_pk\torders(id)\tordered unique\t3 entries" in out
        assert "idx_orders_qty\torders(qty)\thash\t2 entries" in out

    def test_indexes_single_table_filter(self, capsys):
        from repro.sql.cli import _meta_command

        connection = self._connection()
        assert _meta_command(connection, ".indexes tags")
        assert "(no indexes)" in capsys.readouterr().out
        assert _meta_command(connection, ".indexes orders")
        assert "idx_orders_qty" in capsys.readouterr().out

    def test_indexes_unknown_table(self, capsys):
        from repro.sql.cli import _meta_command

        assert _meta_command(self._connection(), ".indexes nope")
        assert "unknown table 'nope'" in capsys.readouterr().err


class TestConnectFlag:
    """repro-sql --connect drives a running wire server."""

    @pytest.fixture()
    def server(self):
        from repro.api.database import Database
        from repro.server import start_server_thread

        database = Database()
        database.execute_script(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2), (3); ANALYZE t"
        )
        handle = start_server_thread(database)
        yield handle.address
        handle.stop()

    def test_command_executes_remotely(self, server, capsys):
        from repro.sql.cli import main

        host, port = server
        assert main(["--connect", f"{host}:{port}", "-c", "SELECT COUNT(*) FROM t"]) == 0
        out = capsys.readouterr().out
        assert "count(*)" in out
        assert "(1 row)" in out

    def test_remote_meta_commands(self, server, capsys):
        from repro.client import connect as client_connect
        from repro.sql.cli import _meta_command

        host, port = server
        with client_connect(host, port) as connection:
            assert _meta_command(connection, ".tables")
            assert "t\t3 rows" in capsys.readouterr().out
            assert _meta_command(connection, ".stats")
            assert "plan_cache" in capsys.readouterr().out
            assert _meta_command(connection, ".schema")
            assert "not supported over --connect" in capsys.readouterr().err

    def test_bad_address_rejected(self, capsys):
        from repro.sql.cli import main

        assert main(["--connect", "nonsense", "-c", "SELECT 1"]) == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_remote_errors_render_with_caret(self, server, capsys):
        from repro.sql.cli import main

        host, port = server
        assert main(["--connect", f"{host}:{port}", "-c", "SELECT nope FROM t"]) == 1
        err = capsys.readouterr().err
        assert "unknown column 'nope'" in err
        assert "^" in err


class TestTimerMetaCommand:
    def _connection(self):
        import repro

        connection = repro.connect()
        connection.executescript(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2)"
        )
        return connection

    def test_timer_toggles_and_prints_wall_time(self, capsys):
        from repro.sql.cli import _meta_command, set_timer, timer_enabled

        connection = self._connection()
        try:
            assert _meta_command(connection, ".timer on")
            assert timer_enabled()
            assert capsys.readouterr().out.strip() == "timer on"
            out = io.StringIO()
            run_statement(connection, "SELECT a FROM t", out=out)
            assert "Time: " in out.getvalue()
            assert " ms" in out.getvalue()

            assert _meta_command(connection, ".timer off")
            assert not timer_enabled()
            out = io.StringIO()
            run_statement(connection, "SELECT a FROM t", out=out)
            assert "Time: " not in out.getvalue()
        finally:
            set_timer(False)

    def test_timer_requires_on_or_off(self, capsys):
        from repro.sql.cli import _meta_command, timer_enabled

        assert _meta_command(self._connection(), ".timer maybe")
        assert "usage: .timer on|off" in capsys.readouterr().err
        assert not timer_enabled()

    def test_timer_listed_in_repl_banner_help(self):
        import inspect

        from repro.sql import cli

        assert ".timer on|off" in inspect.getsource(cli.repl)
