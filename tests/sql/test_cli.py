"""Tests for the repro-sql console entry point."""

import io

from repro.sql.cli import build_session, main, run_statement


class TestBuildSession:
    def test_stats_only_session(self):
        session = build_session(scale=0.01, data_scale=None, seed=7)
        assert session.data is None

    def test_data_backed_session(self):
        session = build_session(scale=0.01, data_scale=0.0002, seed=7)
        assert session.data is not None
        assert "customer" in session.data


class TestRunStatement:
    def test_explain_prints_plan(self):
        session = build_session(scale=0.01, data_scale=None, seed=7)
        out = io.StringIO()
        run_statement(
            session,
            "EXPLAIN SELECT n_name FROM nation, region WHERE n_regionkey = r_regionkey",
            out=out,
        )
        assert "seq-scan" in out.getvalue()

    def test_select_prints_rows_and_count(self):
        session = build_session(scale=0.01, data_scale=0.0002, seed=7)
        out = io.StringIO()
        run_statement(session, "SELECT r_name FROM region LIMIT 2", out=out)
        text = out.getvalue()
        assert "region.r_name" in text
        assert "(2 rows)" in text


class TestMain:
    def test_command_mode_success(self, capsys):
        code = main(["-c", "EXPLAIN SELECT r_name FROM region"])
        assert code == 0
        assert "seq-scan" in capsys.readouterr().out

    def test_command_mode_sql_error(self, capsys):
        code = main(["-c", "SELECT nope FROM region"])
        assert code == 1
        assert "nope" in capsys.readouterr().err

    def test_command_mode_select_without_data_fails_cleanly(self, capsys):
        code = main(["-c", "SELECT r_name FROM region"])
        assert code == 1
        assert "no data loaded" in capsys.readouterr().err


class TestEngineFlag:
    def test_engine_row_reported_by_explain_analyze(self, capsys):
        code = main(
            [
                "--data-scale",
                "0.0002",
                "--engine",
                "row",
                "-c",
                "EXPLAIN ANALYZE SELECT r_name FROM region",
            ]
        )
        assert code == 0
        assert "engine: row" in capsys.readouterr().out

    def test_engine_defaults_to_vectorized(self, capsys):
        code = main(["--data-scale", "0.0002", "-c", "EXPLAIN ANALYZE SELECT r_name FROM region"])
        assert code == 0
        assert "engine: vectorized" in capsys.readouterr().out

    def test_batch_size_flag_accepted(self, capsys):
        code = main(
            [
                "--data-scale",
                "0.0002",
                "--batch-size",
                "16",
                "-c",
                "SELECT r_name FROM region LIMIT 1",
            ]
        )
        assert code == 0
        assert "(1 row)" in capsys.readouterr().out
