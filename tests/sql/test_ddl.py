"""Parser + binder tests for the DDL/DML grammar and its error paths.

Every rejection must be a positioned :class:`SqlError` whose rendered
message carries the caret snippet pointing at the offending token.
"""

import pytest

import repro
from repro.common.errors import SqlBindingError, SqlError, SqlSyntaxError
from repro.sql.ast import (
    AnalyzeStatement,
    CopyStatement,
    CreateIndexStatement,
    CreateTableStatement,
    DropIndexStatement,
    InsertStatement,
    Parameter,
)
from repro.sql.parser import parse, parse_script, split_statements


def assert_caret_points_at(error: SqlSyntaxError, source: str, fragment: str) -> None:
    """The error's (line, column) lands on *fragment* in *source*."""
    assert error.position is not None, f"no position on: {error}"
    line, column = error.position
    line_text = source.splitlines()[line - 1]
    assert line_text[column - 1 :].startswith(fragment), (
        f"caret at {error.position} points at "
        f"{line_text[column - 1:][:20]!r}, expected {fragment!r}"
    )
    assert "^" in str(error)  # rendered caret snippet


class TestCreateTableParsing:
    def test_full_create(self):
        statement = parse(
            "CREATE TABLE t (a INTEGER, b FLOAT, c STRING, d DATE, "
            "PRIMARY KEY (a), INDEX (b), INDEX (d))"
        )
        assert isinstance(statement, CreateTableStatement)
        assert [c.name for c in statement.columns] == ["a", "b", "c", "d"]
        assert statement.primary_key == "a"
        assert [i.column for i in statement.indexes] == ["b", "d"]

    def test_missing_paren(self):
        source = "CREATE TABLE t a INTEGER"
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse(source)
        assert "'('" in str(excinfo.value)
        assert_caret_points_at(excinfo.value, source, "a INTEGER")

    def test_missing_type(self):
        source = "CREATE TABLE t (a, b INTEGER)"
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse(source)
        assert_caret_points_at(excinfo.value, source, ",")
        assert "type for column 'a'" in str(excinfo.value)

    def test_empty_column_list(self):
        with pytest.raises(SqlSyntaxError):
            parse("CREATE TABLE t ()")

    def test_duplicate_primary_key_clause(self):
        with pytest.raises(SqlSyntaxError, match="duplicate PRIMARY KEY"):
            parse("CREATE TABLE t (a INTEGER, PRIMARY KEY (a), PRIMARY KEY (a))")

    def test_unknown_type_is_binding_error(self):
        conn = repro.connect()
        source = "CREATE TABLE t (a FANCYTYPE)"
        with pytest.raises(SqlBindingError) as excinfo:
            conn.execute(source)
        assert "unknown type 'FANCYTYPE'" in str(excinfo.value)
        assert_caret_points_at(excinfo.value, source, "a FANCYTYPE")

    def test_duplicate_column(self):
        conn = repro.connect()
        with pytest.raises(SqlBindingError, match="duplicate column 'a'"):
            conn.execute("CREATE TABLE t (a INTEGER, a FLOAT)")

    def test_index_on_unknown_column(self):
        conn = repro.connect()
        with pytest.raises(SqlBindingError, match="INDEX column 'z'"):
            conn.execute("CREATE TABLE t (a INTEGER, INDEX (z))")

    def test_primary_key_on_unknown_column(self):
        conn = repro.connect()
        with pytest.raises(SqlBindingError, match="PRIMARY KEY column 'z'"):
            conn.execute("CREATE TABLE t (a INTEGER, PRIMARY KEY (z))")


class TestInsertParsing:
    def test_insert_forms(self):
        statement = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL), (-3, ?)")
        assert isinstance(statement, InsertStatement)
        assert statement.columns == ("a", "b")
        assert len(statement.rows) == 3
        assert statement.rows[1][1].value is None
        assert isinstance(statement.rows[2][1], Parameter)

    def test_missing_values_keyword(self):
        source = "INSERT INTO t (1, 2)"
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse(source)
        assert_caret_points_at(excinfo.value, source, "1, 2)")

    def test_column_reference_in_values(self):
        source = "INSERT INTO t VALUES (a)"
        with pytest.raises(SqlSyntaxError, match="literal, NULL or parameter") as excinfo:
            parse(source)
        assert_caret_points_at(excinfo.value, source, "a)")

    def test_unterminated_row(self):
        with pytest.raises(SqlSyntaxError, match="','|'\\)'"):
            parse("INSERT INTO t VALUES (1, 2")

    def test_insert_unknown_table(self):
        conn = repro.connect()
        with pytest.raises(SqlBindingError, match="unknown table 'missing'"):
            conn.execute("INSERT INTO missing VALUES (1)")

    def test_insert_arity_mismatch(self):
        conn = repro.connect()
        conn.execute("CREATE TABLE t (a INTEGER, b FLOAT)")
        source = "INSERT INTO t VALUES (1)"
        with pytest.raises(SqlBindingError) as excinfo:
            conn.execute(source)
        assert "1 value but 2 columns" in str(excinfo.value)
        assert_caret_points_at(excinfo.value, source, "1)")

    def test_insert_type_mismatch_literal(self):
        conn = repro.connect()
        conn.execute("CREATE TABLE t (a INTEGER, b FLOAT)")
        source = "INSERT INTO t VALUES (1, 'oops')"
        with pytest.raises(SqlBindingError) as excinfo:
            conn.execute(source)
        assert "type mismatch for column 'b'" in str(excinfo.value)
        assert "expected float" in str(excinfo.value)
        assert_caret_points_at(excinfo.value, source, "'oops'")

    def test_integer_column_rejects_float(self):
        conn = repro.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(SqlBindingError, match="type mismatch"):
            conn.execute("INSERT INTO t VALUES (1.5)")

    def test_float_column_accepts_integer(self):
        conn = repro.connect()
        conn.execute("CREATE TABLE t (b FLOAT)")
        assert conn.execute("INSERT INTO t VALUES (1)").rowcount == 1

    def test_null_always_admitted(self):
        conn = repro.connect()
        conn.execute("CREATE TABLE t (a INTEGER, b FLOAT, c STRING)")
        assert conn.execute("INSERT INTO t VALUES (NULL, NULL, NULL)").rowcount == 1


class TestCopyAndAnalyzeParsing:
    def test_copy_parses(self):
        statement = parse("COPY t FROM '/tmp/x.csv'")
        assert isinstance(statement, CopyStatement)
        assert statement.path == "/tmp/x.csv"

    def test_copy_requires_quoted_path(self):
        source = "COPY t FROM data.csv"
        with pytest.raises(SqlSyntaxError, match="quoted CSV path") as excinfo:
            parse(source)
        assert_caret_points_at(excinfo.value, source, "data.csv")

    def test_copy_requires_from(self):
        with pytest.raises(SqlSyntaxError, match="FROM"):
            parse("COPY t '/tmp/x.csv'")

    def test_copy_with_options(self):
        statement = parse("COPY t FROM '/tmp/x.csv' WITH (NULL 'NULL', DELIMITER '|')")
        assert isinstance(statement, CopyStatement)
        assert statement.null_token == "NULL"
        assert statement.delimiter == "|"

    def test_copy_options_default(self):
        statement = parse("COPY t FROM '/tmp/x.csv'")
        assert statement.null_token is None
        assert statement.delimiter == ","

    def test_copy_rejects_multichar_delimiter(self):
        with pytest.raises(SqlSyntaxError, match="single character"):
            parse("COPY t FROM '/tmp/x.csv' WITH (DELIMITER 'ab')")

    def test_copy_rejects_unknown_option(self):
        with pytest.raises(SqlSyntaxError, match="DELIMITER"):
            parse("COPY t FROM '/tmp/x.csv' WITH (HEADER 'yes')")

    def test_analyze_forms(self):
        assert isinstance(parse("ANALYZE"), AnalyzeStatement)
        statement = parse("ANALYZE t")
        assert isinstance(statement, AnalyzeStatement)
        assert statement.table == "t"

    def test_explain_analyze_still_explains(self):
        from repro.sql.ast import ExplainStatement

        statement = parse("EXPLAIN ANALYZE SELECT a FROM t")
        assert isinstance(statement, ExplainStatement)
        assert statement.analyze


class TestParameterParsing:
    def test_question_marks_number_left_to_right(self):
        statement = parse("SELECT a FROM t WHERE b > ? AND c < ?")
        parameters = [
            predicate.right for predicate in statement.predicates
        ]
        assert [parameter.index for parameter in parameters] == [1, 2]

    def test_mixed_styles_rejected(self):
        source = "SELECT a FROM t WHERE b > ? AND c < $2"
        with pytest.raises(SqlSyntaxError, match="mix") as excinfo:
            parse(source)
        assert_caret_points_at(excinfo.value, source, "$2")

    def test_dollar_zero_rejected(self):
        with pytest.raises(SqlSyntaxError, match="1-based"):
            parse("SELECT a FROM t WHERE b > $0")

    def test_bare_dollar_rejected(self):
        with pytest.raises(SqlSyntaxError, match="parameter number"):
            parse("SELECT a FROM t WHERE b > $")

    def test_parameter_vs_parameter_rejected(self):
        conn = repro.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(SqlBindingError, match="references no relation columns"):
            conn.execute("SELECT a FROM t WHERE ? = ?", (1, 1))

    def test_string_parameter_in_arithmetic_rejected_cleanly(self):
        # Parameter-only arithmetic types the slots FLOAT, so a mistyped
        # value raises SqlError instead of a raw TypeError from the engine.
        conn = repro.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(SqlError, match="type mismatch for parameter"):
            conn.execute("SELECT a FROM t WHERE a < ? + ?", ("foo", "bar"))

    def test_parameter_vs_constant_rejected(self):
        conn = repro.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        with pytest.raises(SqlBindingError, match="references no relation columns"):
            conn.execute("SELECT a FROM t WHERE ? = 1", (1,))


class TestScripts:
    def test_parse_script_multiple_statements(self):
        statements = parse_script(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); SELECT a FROM t;"
        )
        assert len(statements) == 3

    def test_split_statements_respects_strings(self):
        chunks = split_statements(
            "SELECT a FROM t WHERE c = 'x;y'; ANALYZE t;\n-- comment; not a stmt\n"
        )
        assert chunks == ["SELECT a FROM t WHERE c = 'x;y'", "ANALYZE t"]

    def test_missing_semicolon_between_statements(self):
        with pytest.raises(SqlSyntaxError, match="';'"):
            parse_script("ANALYZE t ANALYZE u")


class TestCreateIndexParsing:
    def test_full_create_index(self):
        statement = parse("CREATE INDEX idx_t_a ON t (a)")
        assert isinstance(statement, CreateIndexStatement)
        assert statement.name == "idx_t_a"
        assert statement.table == "t"
        assert statement.column == "a"
        assert statement.unique is False
        assert statement.kind is None

    def test_unique_and_using(self):
        statement = parse("CREATE UNIQUE INDEX i ON t (a) USING HASH")
        assert statement.unique is True
        assert statement.kind == "hash"
        assert parse("CREATE INDEX i ON t (a) USING ORDERED").kind == "ordered"

    def test_unknown_kind(self):
        source = "CREATE INDEX i ON t (a) USING btree"
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse(source)
        assert "HASH or ORDERED" in str(excinfo.value)
        assert_caret_points_at(excinfo.value, source, "btree")

    def test_missing_on(self):
        source = "CREATE INDEX i t (a)"
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse(source)
        assert "ON" in str(excinfo.value)
        assert_caret_points_at(excinfo.value, source, "t (a)")

    def test_drop_index(self):
        statement = parse("DROP INDEX idx_t_a")
        assert isinstance(statement, DropIndexStatement)
        assert statement.name == "idx_t_a"

    def test_drop_without_name(self):
        with pytest.raises(SqlSyntaxError, match="index name"):
            parse("DROP INDEX")


class TestCreateIndexBinding:
    def _connection(self):
        conn = repro.connect()
        conn.execute("CREATE TABLE t (a INTEGER, b FLOAT)")
        return conn

    def test_create_and_drop_roundtrip(self):
        conn = self._connection()
        conn.execute("CREATE INDEX idx_a ON t (a)")
        schema = conn.database.catalog.schema
        assert schema.has_index("idx_a")
        assert schema.index("idx_a").kind == "ordered"
        conn.execute("DROP INDEX idx_a")
        assert not schema.has_index("idx_a")

    def test_unknown_table_caret(self):
        conn = self._connection()
        source = "CREATE INDEX idx ON missing (a)"
        with pytest.raises(SqlBindingError) as excinfo:
            conn.execute(source)
        assert "unknown table 'missing'" in str(excinfo.value)
        assert_caret_points_at(excinfo.value, source, "missing")

    def test_unknown_column_caret(self):
        conn = self._connection()
        source = "CREATE INDEX idx ON t (nope)"
        with pytest.raises(SqlBindingError) as excinfo:
            conn.execute(source)
        assert "column 'nope' does not exist" in str(excinfo.value)
        assert_caret_points_at(excinfo.value, source, "nope")

    def test_duplicate_name_rejected(self):
        conn = self._connection()
        conn.execute("CREATE INDEX idx ON t (a)")
        with pytest.raises(SqlBindingError, match="already exists"):
            conn.execute("CREATE INDEX idx ON t (b)")

    def test_drop_unknown_index_caret(self):
        conn = self._connection()
        source = "DROP INDEX ghost"
        with pytest.raises(SqlBindingError) as excinfo:
            conn.execute(source)
        assert "unknown index 'ghost'" in str(excinfo.value)
        assert_caret_points_at(excinfo.value, source, "ghost")

    def test_hash_index_built_physically(self):
        conn = self._connection()
        conn.execute("INSERT INTO t VALUES (1, 0.5), (2, 1.5)")
        conn.execute("CREATE INDEX idx_hash ON t (a) USING HASH")
        stored = conn.database.store["t"]
        assert stored.index("idx_hash").kind == "hash"
        assert stored.index("idx_hash").lookup(2) == [1]


class TestUniqueIndexSql:
    def test_primary_key_rejects_duplicate_insert(self):
        conn = repro.connect()
        conn.execute("CREATE TABLE t (a INTEGER, PRIMARY KEY (a))")
        conn.execute("INSERT INTO t VALUES (1), (2)")
        with pytest.raises(SqlError, match="unique index"):
            conn.execute("INSERT INTO t VALUES (2)")
        # the failed insert changed nothing
        result = conn.database.execute("SELECT COUNT(*) FROM t")
        assert result.rows == [{"count(*)": 2}]

    def test_create_unique_index_over_duplicates_rejected(self):
        conn = repro.connect()
        conn.execute("CREATE TABLE t (a INTEGER)")
        conn.execute("INSERT INTO t VALUES (1), (1)")
        with pytest.raises(SqlError, match="duplicate values"):
            conn.execute("CREATE UNIQUE INDEX idx_a ON t (a)")
        # the failed build registered nothing: the name is still free
        assert not conn.database.catalog.schema.has_index("idx_a")
        conn.execute("CREATE INDEX idx_a ON t (a)")  # non-unique is fine
