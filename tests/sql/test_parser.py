"""Tests for the recursive-descent SQL parser."""

import pytest

from repro.common.errors import SqlSyntaxError
from repro.sql.ast import (
    AggregateCall,
    ColumnName,
    ExplainStatement,
    Literal,
    SelectStatement,
)
from repro.sql.parser import parse, parse_select


class TestSelectCore:
    def test_minimal_select(self):
        statement = parse_select("SELECT c_name FROM customer")
        assert isinstance(statement, SelectStatement)
        assert statement.tables[0].table == "customer"
        assert statement.select_items == (ColumnName("c_name", position=(1, 8)),)

    def test_select_star(self):
        statement = parse_select("SELECT * FROM customer")
        assert statement.select_star
        assert statement.select_items == ()

    def test_qualified_columns_and_alias(self):
        statement = parse_select("SELECT c.c_name FROM customer AS c")
        assert statement.tables[0].alias == "c"
        item = statement.select_items[0]
        assert item.qualifier == "c"
        assert item.name == "c_name"

    def test_implicit_alias(self):
        statement = parse_select("SELECT c.c_name FROM customer c")
        assert statement.tables[0].alias == "c"

    def test_trailing_semicolon_ok(self):
        parse_select("SELECT c_name FROM customer;")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT c_name FROM customer garbage extra")


class TestPredicates:
    def test_filter_and_join_predicates(self):
        statement = parse_select(
            "SELECT o_orderkey FROM customer, orders "
            "WHERE c_custkey = o_custkey AND c_mktsegment = 2"
        )
        assert len(statement.predicates) == 2
        join, filt = statement.predicates
        assert isinstance(join.right, ColumnName)
        assert isinstance(filt.right, Literal)
        assert filt.right.value == 2

    def test_theta_operators(self):
        for op in ("<", "<=", ">", ">=", "!=", "="):
            statement = parse_select(f"SELECT a FROM t, u WHERE t.a {op} u.b")
            assert statement.predicates[0].op == op

    def test_diamond_normalized_to_bang_equals(self):
        statement = parse_select("SELECT a FROM t WHERE a <> 1")
        assert statement.predicates[0].op == "!="

    def test_negative_and_float_literals(self):
        statement = parse_select("SELECT a FROM t WHERE a > -1000 AND b < 24.5")
        assert statement.predicates[0].right.value == -1000
        assert statement.predicates[1].right.value == 24.5

    def test_string_literal(self):
        statement = parse_select("SELECT a FROM t WHERE a = 'BUILDING'")
        assert statement.predicates[0].right.value == "BUILDING"

    def test_selectivity_hint(self):
        statement = parse_select("SELECT a FROM t WHERE a = 2 /*+ selectivity=0.2 */")
        assert statement.predicates[0].selectivity_hint == 0.2

    def test_malformed_hint_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT a FROM t WHERE a = 2 /*+ sel 0.2 */")

    def test_out_of_range_hint_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT a FROM t WHERE a = 2 /*+ selectivity=1.5 */")

    def test_or_parses_below_and(self):
        statement = parse_select("SELECT a FROM t WHERE a = 1 OR a = 2 AND b = 3")
        # AND binds tighter than OR: one top-level conjunct, an OrExpr.
        assert len(statement.predicates) == 1
        disjunction = statement.predicates[0]
        assert type(disjunction).__name__ == "OrExpr"
        assert len(disjunction.items) == 2
        assert type(disjunction.items[1]).__name__ == "AndExpr"


class TestJoinSyntax:
    def test_explicit_join_on(self):
        statement = parse_select(
            "SELECT o_orderkey FROM customer "
            "JOIN orders ON c_custkey = o_custkey"
        )
        assert [table.table for table in statement.tables] == ["customer", "orders"]
        assert len(statement.predicates) == 1

    def test_inner_join(self):
        statement = parse_select(
            "SELECT a FROM t INNER JOIN u ON t.a = u.b INNER JOIN v ON u.b = v.c"
        )
        assert len(statement.tables) == 3
        assert len(statement.predicates) == 2

    def test_join_on_conjunction(self):
        statement = parse_select("SELECT a FROM t JOIN u ON t.a = u.a AND t.b = u.b")
        assert len(statement.predicates) == 2

    def test_mixed_comma_and_join(self):
        statement = parse_select("SELECT a FROM t, u JOIN v ON u.x = v.x WHERE t.y = u.y")
        assert len(statement.tables) == 3
        assert len(statement.predicates) == 2


class TestAggregatesGroupingOrdering:
    def test_aggregates(self):
        statement = parse_select(
            "SELECT l_returnflag, SUM(l_quantity), COUNT(*), "
            "COUNT(DISTINCT l_partkey), AVG(l_discount) "
            "FROM lineitem GROUP BY l_returnflag"
        )
        aggregates = [item for item in statement.select_items if isinstance(item, AggregateCall)]
        assert [agg.function for agg in aggregates] == ["sum", "count", "count", "avg"]
        assert aggregates[1].argument is None
        assert aggregates[2].distinct
        assert [column.name for column in statement.group_by] == ["l_returnflag"]

    def test_sum_star_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT SUM(*) FROM lineitem")

    def test_aggregate_over_expression(self):
        statement = parse_select(
            "SELECT l_returnflag, SUM(l_extendedprice * (1 - l_discount)) "
            "FROM lineitem GROUP BY l_returnflag"
        )
        aggregate = statement.select_items[1]
        assert isinstance(aggregate, AggregateCall)
        assert aggregate.function == "sum"
        assert str(aggregate) == "SUM(l_extendedprice * 1 - l_discount)"

    def test_aggregate_expression_keeps_structure(self):
        statement = parse_select("SELECT AVG(a + b * c) FROM t")
        aggregate = statement.select_items[0]
        assert isinstance(aggregate, AggregateCall)
        assert aggregate.argument is not None
        assert not isinstance(aggregate.argument, ColumnName)

    def test_order_by_and_limit(self):
        statement = parse_select("SELECT a, b FROM t ORDER BY a DESC, b ASC LIMIT 10")
        assert statement.order_by[0].descending
        assert not statement.order_by[1].descending
        assert statement.limit == 10

    def test_limit_requires_integer(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("SELECT a FROM t LIMIT 1.5")


class TestExplain:
    def test_explain(self):
        statement = parse("EXPLAIN SELECT a FROM t")
        assert isinstance(statement, ExplainStatement)
        assert not statement.analyze

    def test_explain_analyze(self):
        statement = parse("EXPLAIN ANALYZE SELECT a FROM t")
        assert isinstance(statement, ExplainStatement)
        assert statement.analyze

    def test_parse_select_rejects_explain(self):
        with pytest.raises(SqlSyntaxError):
            parse_select("EXPLAIN SELECT a FROM t")


class TestErrorPositions:
    def test_missing_from(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse("SELECT a WHERE b = 1")
        assert "expected FROM" in str(excinfo.value)

    def test_error_carries_caret_snippet(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            parse("SELECT a FROM t WHERE = 1")
        message = str(excinfo.value)
        assert "line 1, column 23" in message
        assert "^" in message
