"""Tests for the binder / semantic analyzer."""

import pytest

from repro.common.errors import SqlBindingError
from repro.relational.expressions import ColumnRef
from repro.relational.predicates import ComparisonOp
from repro.relational.query import AggregateFunction
from repro.sql.binder import Binder
from repro.sql.parser import parse_select


def lower(sql, catalog, name="test"):
    return Binder(catalog, source=sql).bind(parse_select(sql), name=name)


class TestTableBinding:
    def test_table_alias_defaults_to_name(self, catalog):
        query = lower("SELECT c_name FROM customer", catalog)
        assert query.aliases == ["customer"]
        assert query.relation("customer").table == "customer"

    def test_explicit_alias(self, catalog):
        query = lower("SELECT c.c_name FROM customer AS c", catalog)
        assert query.aliases == ["c"]
        assert query.relation("c").table == "customer"

    def test_unknown_table(self, catalog):
        with pytest.raises(SqlBindingError) as excinfo:
            lower("SELECT x FROM nonexistent", catalog)
        assert "unknown table 'nonexistent'" in str(excinfo.value)

    def test_duplicate_alias(self, catalog):
        with pytest.raises(SqlBindingError):
            lower("SELECT c_name FROM customer, customer", catalog)

    def test_self_join_with_aliases(self, catalog):
        query = lower(
            "SELECT a.c_name FROM customer a, customer b "
            "WHERE a.c_custkey = b.c_nationkey",
            catalog,
        )
        assert sorted(query.aliases) == ["a", "b"]
        assert len(query.join_predicates) == 1


class TestColumnResolution:
    def test_unqualified_resolution(self, catalog):
        query = lower(
            "SELECT o_orderkey FROM customer, orders WHERE c_custkey = o_custkey",
            catalog,
        )
        predicate = query.join_predicates[0]
        assert predicate.left == ColumnRef("customer", "c_custkey")
        assert predicate.right == ColumnRef("orders", "o_custkey")

    def test_qualified_resolution(self, catalog):
        query = lower("SELECT customer.c_name FROM customer", catalog)
        assert query.projections == (ColumnRef("customer", "c_name"),)

    def test_unknown_column(self, catalog):
        with pytest.raises(SqlBindingError) as excinfo:
            lower("SELECT c_custky FROM customer", catalog)
        assert "unknown column 'c_custky'" in str(excinfo.value)

    def test_unknown_column_in_aliased_table(self, catalog):
        with pytest.raises(SqlBindingError) as excinfo:
            lower("SELECT c.no_such FROM customer c", catalog)
        assert "'no_such'" in str(excinfo.value)

    def test_unknown_qualifier(self, catalog):
        with pytest.raises(SqlBindingError) as excinfo:
            lower("SELECT x.c_name FROM customer", catalog)
        assert "unknown table alias 'x'" in str(excinfo.value)

    def test_ambiguous_column(self, catalog):
        # Self-join: every column exists on both sides.
        with pytest.raises(SqlBindingError) as excinfo:
            lower("SELECT c_name FROM customer a, customer b", catalog)
        assert "ambiguous" in str(excinfo.value)

    def test_binding_error_has_position(self, catalog):
        with pytest.raises(SqlBindingError) as excinfo:
            lower("SELECT c_custky FROM customer", catalog)
        assert excinfo.value.position == (1, 8)
        assert "^" in str(excinfo.value)


class TestPredicateClassification:
    def test_filter_with_hint(self, catalog):
        query = lower(
            "SELECT c_name FROM customer "
            "WHERE c_mktsegment = 2 /*+ selectivity=0.2 */",
            catalog,
        )
        predicate = query.filters[0]
        assert predicate.columns == [ColumnRef("customer", "c_mktsegment")]
        assert str(predicate) == "customer.c_mktsegment = 2"
        assert predicate.selectivity_hint == 0.2

    def test_constant_on_left_binds_as_filter(self, catalog):
        query = lower("SELECT c_name FROM customer WHERE 100 < c_custkey", catalog)
        predicate = query.filters[0]
        assert predicate.columns == [ColumnRef("customer", "c_custkey")]
        assert str(predicate) == "100 < customer.c_custkey"

    def test_theta_join(self, catalog):
        query = lower(
            "SELECT o_orderkey FROM customer, orders WHERE c_custkey < o_custkey",
            catalog,
        )
        assert query.join_predicates[0].op is ComparisonOp.LT
        assert not query.join_predicates[0].is_equijoin

    def test_join_on_clause(self, catalog):
        query = lower(
            "SELECT o_orderkey FROM customer JOIN orders ON c_custkey = o_custkey",
            catalog,
        )
        assert len(query.join_predicates) == 1

    def test_same_relation_column_comparison_is_filter(self, catalog):
        query = lower("SELECT c_name FROM customer WHERE c_custkey = c_nationkey", catalog)
        assert not query.join_predicates
        predicate = query.filters[0]
        assert predicate.alias == "customer"
        assert predicate.columns == [
            ColumnRef("customer", "c_custkey"),
            ColumnRef("customer", "c_nationkey"),
        ]

    def test_constant_comparison_rejected(self, catalog):
        with pytest.raises(SqlBindingError):
            lower("SELECT c_name FROM customer WHERE 1 = 1", catalog)

    def test_hint_on_join_rejected(self, catalog):
        with pytest.raises(SqlBindingError):
            lower(
                "SELECT o_orderkey FROM customer, orders "
                "WHERE c_custkey = o_custkey /*+ selectivity=0.5 */",
                catalog,
            )


class TestSelectListLowering:
    def test_star_expands_all_columns(self, catalog):
        query = lower("SELECT * FROM region", catalog)
        assert query.projections == (
            ColumnRef("region", "r_regionkey"),
            ColumnRef("region", "r_name"),
        )

    def test_aggregates(self, catalog):
        query = lower(
            "SELECT l_returnflag, SUM(l_quantity), COUNT(*), "
            "COUNT(DISTINCT l_partkey) FROM lineitem GROUP BY l_returnflag",
            catalog,
        )
        assert [agg.function for agg in query.aggregates] == [
            AggregateFunction.SUM,
            AggregateFunction.COUNT,
            AggregateFunction.COUNT,
        ]
        assert query.aggregates[1].column is None
        assert query.aggregates[2].distinct

    def test_aggregate_over_expression_lowers_to_spec_expr(self, catalog):
        query = lower(
            "SELECT l_returnflag, SUM(l_extendedprice * (1 - l_discount)) "
            "FROM lineitem GROUP BY l_returnflag",
            catalog,
        )
        aggregate = query.aggregates[0]
        assert aggregate.function is AggregateFunction.SUM
        assert aggregate.column is None
        assert aggregate.expr is not None

    def test_aggregate_over_plain_column_stays_on_column_path(self, catalog):
        query = lower("SELECT SUM(l_quantity) FROM lineitem", catalog)
        aggregate = query.aggregates[0]
        assert aggregate.column is not None
        assert aggregate.expr is None

    def test_aggregate_over_predicate_rejected(self, catalog):
        with pytest.raises(SqlBindingError) as excinfo:
            lower("SELECT SUM(l_quantity > 5) FROM lineitem", catalog)
        assert "aggregate" in str(excinfo.value).lower()

    def test_star_with_group_by_rejected(self, catalog):
        with pytest.raises(SqlBindingError) as excinfo:
            lower("SELECT * FROM nation GROUP BY n_regionkey", catalog)
        assert "SELECT *" in str(excinfo.value)

    def test_bare_column_outside_group_by_rejected(self, catalog):
        with pytest.raises(SqlBindingError) as excinfo:
            lower("SELECT c_name, COUNT(*) FROM customer", catalog)
        assert "GROUP BY" in str(excinfo.value)


class TestOrderLimitLowering:
    def test_order_by_and_limit(self, catalog):
        query = lower(
            "SELECT c_name FROM customer ORDER BY c_acctbal DESC, c_name LIMIT 5",
            catalog,
        )
        assert [str(item.column) for item in query.order_by] == [
            "customer.c_acctbal",
            "customer.c_name",
        ]
        assert query.order_by[0].descending
        assert not query.order_by[1].descending
        assert query.limit == 5

    def test_order_by_must_be_grouped_when_aggregating(self, catalog):
        with pytest.raises(SqlBindingError):
            lower(
                "SELECT c_mktsegment, COUNT(*) FROM customer "
                "GROUP BY c_mktsegment ORDER BY c_acctbal",
                catalog,
            )
