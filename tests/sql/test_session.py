"""End-to-end tests for the Session facade."""

import pytest

from repro.common.errors import SqlError
from repro.engine.executor import PlanExecutor
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.sql.session import Session, render_plan
from repro.workloads.queries import q3s
from repro.workloads.sql_queries import Q3S_SQL
from repro.workloads.tpch import catalog_from_data, generate_tpch_data


@pytest.fixture(scope="module")
def dataset():
    return generate_tpch_data(scale_factor=0.0005, seed=3)


@pytest.fixture(scope="module")
def data_session(dataset):
    return Session(catalog_from_data(dataset), data=dataset)


@pytest.fixture(scope="module")
def stats_session(catalog):
    """Statistics-only session: can plan and EXPLAIN but not execute."""
    return Session(catalog)


class TestLoweringStages:
    def test_query_returns_ir(self, stats_session):
        query = stats_session.query("SELECT c_name FROM customer", name="q")
        assert query.name == "q"
        assert query.aliases == ["customer"]

    def test_optimize_returns_plan(self, stats_session):
        result = stats_session.optimize(Q3S_SQL)
        assert result.cost > 0
        assert result.plan.expression.aliases == frozenset({"customer", "orders", "lineitem"})


class TestSelectExecution:
    def test_select_matches_builder_pipeline(self, dataset, data_session):
        """Session output equals manually wiring optimizer + executor."""
        result = data_session.execute(Q3S_SQL)
        query = q3s()
        catalog = data_session.catalog
        plan = DeclarativeOptimizer(query, catalog).optimize().plan
        reference = PlanExecutor(query, dataset).execute(plan)

        def key(row):
            return (
                row["lineitem.l_orderkey"],
                row["orders.o_orderdate"],
                row["orders.o_shippriority"],
            )

        assert sorted(map(key, result.rows)) == sorted(map(key, reference.rows))
        assert result.columns == [
            "lineitem.l_orderkey",
            "orders.o_orderdate",
            "orders.o_shippriority",
        ]

    def test_rows_projected_to_select_list(self, data_session):
        result = data_session.execute("SELECT c_name FROM customer LIMIT 4")
        assert result.row_count == 4
        for row in result.rows:
            assert set(row) == {"customer.c_name"}

    def test_group_by_order_by_limit(self, data_session):
        result = data_session.execute(
            "SELECT c_mktsegment, COUNT(*) FROM customer "
            "GROUP BY c_mktsegment ORDER BY c_mktsegment DESC LIMIT 3"
        )
        segments = [row["customer.c_mktsegment"] for row in result.rows]
        assert segments == sorted(segments, reverse=True)
        assert result.row_count <= 3
        assert all(row["count(*)"] > 0 for row in result.rows)

    def test_order_by_column_outside_select_list(self, data_session):
        result = data_session.execute("SELECT c_name FROM customer ORDER BY c_acctbal LIMIT 10")
        assert result.row_count == 10
        assert all(set(row) == {"customer.c_name"} for row in result.rows)

    def test_select_without_data_raises(self, stats_session):
        with pytest.raises(SqlError) as excinfo:
            stats_session.execute("SELECT c_name FROM customer")
        assert "no data loaded" in str(excinfo.value)


class TestExplain:
    def test_explain_without_data(self, stats_session):
        result = stats_session.execute("EXPLAIN " + Q3S_SQL)
        assert result.statement == "explain"
        assert result.rows == []
        assert "est_rows=" in result.plan_text
        assert "actual_rows" not in result.plan_text
        assert "seq-scan" in result.plan_text

    def test_explain_analyze(self, data_session):
        result = data_session.execute("EXPLAIN ANALYZE " + Q3S_SQL)
        assert result.statement == "explain analyze"
        assert "est_rows=" in result.plan_text
        assert "actual_rows=" in result.plan_text
        assert result.execution is not None
        # Every plan operator line reports an observed cardinality.
        assert "actual_rows=?" not in result.plan_text

    def test_explain_analyze_requires_data(self, stats_session):
        with pytest.raises(SqlError):
            stats_session.execute("EXPLAIN ANALYZE SELECT c_name FROM customer")

    def test_explain_mentions_order_and_limit(self, stats_session):
        result = stats_session.execute(
            "EXPLAIN SELECT c_name FROM customer ORDER BY c_acctbal DESC LIMIT 7"
        )
        assert "order by customer.c_acctbal desc" in result.plan_text
        assert "limit 7" in result.plan_text

    def test_render_plan_shape(self, stats_session):
        result = stats_session.optimize(Q3S_SQL)
        text = render_plan(result.plan)
        lines = text.splitlines()
        assert len(lines) == result.plan.node_count
        assert lines[0].startswith(result.plan.operator.value)


class TestAggregateObservedCardinality:
    def test_aggregate_actual_rows_distinct_from_join(self, data_session):
        """The aggregate's observed count is reported separately from its
        child's even though both share the same expression."""
        result = data_session.execute(
            "EXPLAIN ANALYZE SELECT c_mktsegment, COUNT(*) FROM customer "
            "GROUP BY c_mktsegment"
        )
        execution = result.execution
        keys = list(execution.operator_cardinalities)
        aggregate_keys = [key for key in keys if key.startswith("hash-aggregate")]
        scan_keys = [key for key in keys if key.startswith("seq-scan")]
        assert aggregate_keys and scan_keys
        assert (
            execution.operator_cardinalities[aggregate_keys[0]]
            <= execution.operator_cardinalities[scan_keys[0]]
        )


class TestEngineSelection:
    def test_vectorized_is_default(self, data_session):
        assert data_session.engine == "vectorized"
        result = data_session.execute("EXPLAIN ANALYZE SELECT c_name FROM customer")
        assert "engine: vectorized" in result.plan_text
        assert result.execution.engine == "vectorized"

    def test_row_engine_selectable(self, dataset):
        session = Session(catalog_from_data(dataset), data=dataset, engine="row")
        result = session.execute("EXPLAIN ANALYZE SELECT c_name FROM customer")
        assert "engine: row" in result.plan_text
        assert result.execution.engine == "row"

    def test_unknown_engine_rejected(self, dataset):
        with pytest.raises(SqlError) as excinfo:
            Session(catalog_from_data(dataset), data=dataset, engine="gpu")
        assert "gpu" in str(excinfo.value)

    def test_batch_size_forwarded(self, dataset):
        session = Session(
            catalog_from_data(dataset), data=dataset, engine="vectorized", batch_size=7
        )
        result = session.execute("SELECT c_name FROM customer LIMIT 3")
        assert result.row_count == 3


class TestStatementNaming:
    def test_autogenerated_names_increment(self, stats_session):
        first = stats_session.query("SELECT c_name FROM customer")
        second = stats_session.query("SELECT c_name FROM customer")
        assert first.name != second.name
