"""Tests for the SQL tokenizer."""

import pytest

from repro.common.errors import SqlSyntaxError
from repro.sql.tokens import TokenType, tokenize


def types(source):
    return [token.type for token in tokenize(source)]


class TestBasicTokens:
    def test_simple_select(self):
        tokens = tokenize("SELECT a FROM t")
        assert [t.type for t in tokens] == [
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
            TokenType.KEYWORD,
            TokenType.IDENTIFIER,
            TokenType.EOF,
        ]
        assert tokens[0].text == "SELECT"
        assert tokens[1].text == "a"

    def test_keywords_case_insensitive(self):
        upper, lower = tokenize("SELECT")[0], tokenize("select")[0]
        assert upper.type is TokenType.KEYWORD
        assert lower.type is TokenType.KEYWORD

    def test_qualified_column(self):
        tokens = tokenize("customer.c_custkey")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.IDENTIFIER,
            TokenType.DOT,
            TokenType.IDENTIFIER,
        ]

    def test_operators(self):
        for operator in ("=", "!=", "<>", "<", "<=", ">", ">="):
            tokens = tokenize(f"a {operator} b")
            assert tokens[1].type is TokenType.OPERATOR
            assert tokens[1].text == operator

    def test_numbers(self):
        tokens = tokenize("1 1168 2.5 1e3")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.INTEGER,
            TokenType.INTEGER,
            TokenType.FLOAT,
            TokenType.FLOAT,
        ]

    def test_string_literal(self):
        token = tokenize("'BUILDING'")[0]
        assert token.type is TokenType.STRING
        assert token.text == "BUILDING"

    def test_punctuation(self):
        assert types("( ) , ; * -")[:-1] == [
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.COMMA,
            TokenType.SEMICOLON,
            TokenType.STAR,
            TokenType.MINUS,
        ]


class TestPositions:
    def test_positions_are_one_based(self):
        token = tokenize("SELECT")[0]
        assert token.position == (1, 1)

    def test_multiline_positions(self):
        tokens = tokenize("SELECT a\nFROM t")
        from_token = tokens[2]
        assert from_token.text == "FROM"
        assert from_token.position == (2, 1)
        table_token = tokens[3]
        assert table_token.position == (2, 6)


class TestComments:
    def test_line_comment_skipped(self):
        tokens = tokenize("SELECT a -- trailing comment\nFROM t")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "a", "FROM", "t"]

    def test_block_comment_skipped(self):
        tokens = tokenize("SELECT /* not a hint */ a FROM t")
        assert [t.text for t in tokens[:-1]] == ["SELECT", "a", "FROM", "t"]

    def test_hint_comment_is_a_token(self):
        tokens = tokenize("a = 2 /*+ selectivity=0.2 */")
        assert tokens[3].type is TokenType.HINT
        assert tokens[3].text == "selectivity=0.2"

    def test_unterminated_comment(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT /* oops")


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(SqlSyntaxError) as excinfo:
            tokenize("SELECT @")
        assert "line 1, column 8" in str(excinfo.value)

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT 'oops")
