"""Acceptance tests: SQL workload texts lower to cost-identical plans.

For every scale-experiment query (Q3S, Q5, Q5S, Q10, Q8Join, Q8JoinS) the SQL
text in :mod:`repro.workloads.sql_queries` must produce a Query whose content
matches the builder-constructed original and whose optimized plan has the
same cost.
"""

import pytest

from repro.optimizer.declarative import DeclarativeOptimizer
from repro.workloads.queries import q1, q3, q3s, q5, q5s, q6, q8join, q8joins, q10
from repro.workloads.sql_queries import ALL_SQL, WORKLOAD_SQL, sql_query

BUILDERS = {
    "Q1": q1,
    "Q3": q3,
    "Q3S": q3s,
    "Q5": q5,
    "Q5S": q5s,
    "Q6": q6,
    "Q10": q10,
    "Q8Join": q8join,
    "Q8JoinS": q8joins,
}


@pytest.mark.parametrize("name", sorted(ALL_SQL))
class TestContentEquivalence:
    def test_same_relations(self, name, catalog):
        sql = sql_query(name, catalog)
        built = BUILDERS[name]()
        assert sorted(sql.aliases) == sorted(built.aliases)
        for alias in built.aliases:
            assert sql.relation(alias).table == built.relation(alias).table

    def test_same_predicates(self, name, catalog):
        sql = sql_query(name, catalog)
        built = BUILDERS[name]()
        assert set(sql.join_predicates) == set(built.join_predicates)
        assert set(sql.filters) == set(built.filters)

    def test_same_projection_grouping_aggregates(self, name, catalog):
        sql = sql_query(name, catalog)
        built = BUILDERS[name]()
        assert sql.projections == built.projections
        assert sql.group_by == built.group_by
        assert sql.aggregates == built.aggregates


@pytest.mark.parametrize("name", sorted(WORKLOAD_SQL))
def test_optimized_plan_cost_identical(name, catalog):
    """The issue's acceptance criterion: identical optimized plan cost."""
    sql = sql_query(name, catalog)
    built = BUILDERS[name]()
    sql_result = DeclarativeOptimizer(sql, catalog).optimize()
    built_result = DeclarativeOptimizer(built, catalog).optimize()
    assert sql_result.cost == pytest.approx(built_result.cost, rel=1e-12)
    assert sql_result.plan.join_order_signature() == built_result.plan.join_order_signature()


@pytest.mark.parametrize("name", sorted(ALL_SQL))
def test_sql_queries_validate_against_schema(name, catalog):
    sql_query(name, catalog).validate_against(catalog.schema)
