"""Database- and server-level observability: traces, metrics, event log."""

import json
import re

import pytest

from repro.api.database import Database
from repro.common.errors import SqlError
from repro.obs.metrics import parse_prometheus


def _seeded_database(**options) -> Database:
    database = Database(**options)
    database.execute_script(
        "CREATE TABLE t (ta INTEGER); "
        "CREATE TABLE u (ua INTEGER, ub INTEGER); "
        "INSERT INTO t VALUES (1), (2); "
        "INSERT INTO u VALUES (1, 0), (2, 0); "
        "ANALYZE t; ANALYZE u"
    )
    return database


def _grow_stale(database: Database) -> None:
    """Make u's analyzed statistics stale: 100 extra rows on the hot key."""
    values = ", ".join(f"(1, {index})" for index in range(100))
    database.execute(f"INSERT INTO u VALUES {values}")


JOIN = "SELECT COUNT(*) FROM t, u WHERE ta = ua"


class TestStats:
    def test_legacy_keys_preserved(self):
        database = _seeded_database()
        database.execute("SELECT ta FROM t")
        stats = database.stats()
        assert sorted(stats) == [
            "catalog_version",
            "executions",
            "monitor",
            "parallel",
            "plan_cache",
            "statements",
            "tables",
        ]
        assert stats["tables"] == {"t": 2, "u": 2}
        assert stats["statements"]["select"] == 1
        assert stats["statements"]["insert"] == 2
        assert stats["executions"] == 1
        assert stats["plan_cache"]["entries"] == 1

    def test_stats_is_a_registry_view(self):
        database = _seeded_database()
        database.execute("SELECT ta FROM t")
        registry_counts = database.metrics_registry.to_dict()["counters"]
        assert registry_counts["repro_statements_total"]["values"]["select"] == 1
        assert database.stats()["statements"]["select"] == 1


class TestTracing:
    def test_disabled_by_default_and_near_free(self):
        database = _seeded_database()
        result = database.execute("SELECT ta FROM t")
        assert result.trace_id is None
        assert database.traces() == []

    def test_statement_trace_spans(self):
        database = _seeded_database(trace=True)
        result = database.execute(JOIN)
        assert result.trace_id is not None
        trace = database.traces()[-1]
        assert trace["trace_id"] == result.trace_id
        assert trace["status"] == "ok"
        assert trace["statement"] == JOIN
        children = [child["name"] for child in trace["spans"]["children"]]
        assert children == [
            "plan-cache-lookup",
            "plan-wait",
            "parse",
            "bind",
            "optimize",
            "execute",
        ]
        lookup = trace["spans"]["children"][0]
        assert lookup["attributes"]["hit"] is False

    def test_cache_hit_shortens_the_trace(self):
        database = _seeded_database(trace=True)
        database.execute(JOIN)
        database.execute(JOIN)
        trace = database.traces()[-1]
        children = [child["name"] for child in trace["spans"]["children"]]
        assert children == ["plan-cache-lookup", "execute"]
        assert trace["spans"]["children"][0]["attributes"]["hit"] is True

    def test_operator_spans_match_explain_analyze(self):
        database = _seeded_database(trace=True)
        database.execute(JOIN)
        analyzed = database.execute(f"EXPLAIN ANALYZE {JOIN}")
        expected = re.findall(
            r"est_rows=([^,)]+), actual_rows=([^,)]+)\)", analyzed.plan_text
        )
        execute_span = database.traces()[-2]["spans"]["children"][-1]
        operators = [
            span for span in execute_span["children"] if span["name"] == "operator"
        ]
        observed = [
            (span["attributes"]["est_rows"], span["attributes"]["actual_rows"])
            for span in operators
        ]
        assert observed == expected
        assert all(actual != "?" for _, actual in observed)

    def test_error_traces_carry_the_id(self):
        database = _seeded_database(trace=True)
        with pytest.raises(SqlError) as excinfo:
            database.execute("SELECT nope FROM t")
        trace = database.traces()[-1]
        assert trace["status"] == "error"
        assert "nope" in trace["error"]
        assert excinfo.value.trace_id == trace["trace_id"]

    def test_session_tag_flows_into_the_trace(self):
        database = _seeded_database(trace=True)
        database.execute("SELECT ta FROM t", session="session-7")
        assert database.traces()[-1]["session"] == "session-7"

    def test_traces_are_json_serializable(self):
        database = _seeded_database(trace=True)
        database.execute(JOIN)
        json.dumps(database.traces())


class TestSlowQueryLog:
    def test_threshold_zero_logs_everything_with_trace(self):
        database = _seeded_database(slow_query_ms=0.0)
        database.execute("SELECT ta FROM t")
        events = database.events(kind="slow_query")
        assert events
        event = events[-1]
        assert event["statement"] == "select ta from t"  # normalized form
        assert event["elapsed_ms"] >= 0.0
        # slow_query_ms implies tracing, so the trace rides along
        assert event["trace"]["trace_id"] == event["trace_id"]
        assert database.stats() is not None  # registry unaffected

    def test_high_threshold_logs_nothing(self):
        database = _seeded_database(slow_query_ms=60000.0)
        database.execute("SELECT ta FROM t")
        assert database.events(kind="slow_query") == []


class TestReoptimizationEvents:
    def test_refresh_records_events_with_deltas(self):
        database = _seeded_database()
        _grow_stale(database)
        database.execute(JOIN)
        database.refresh_cached_plans()
        events = database.events(kind="reoptimization")
        assert events
        event = events[-1]
        assert event["deltas"], "stale join statistics must surface deltas"
        delta = event["deltas"][0]
        assert delta["new_factor"] != delta["old_factor"]
        assert "t" in delta["expression"] and "u" in delta["expression"]
        assert isinstance(event["cost_before"], float)
        assert isinstance(event["cost_after"], float)
        assert event["plan_before"] and event["plan_after"]
        assert event["plan_flipped"] == (event["plan_before"] != event["plan_after"])
        counters = database.metrics_registry.to_dict()["counters"]
        assert counters["repro_reoptimizations_total"]["values"][""] >= 1

    def test_refresh_without_observations_records_nothing(self):
        database = _seeded_database()
        database.refresh_cached_plans()
        assert database.events(kind="reoptimization") == []


class TestMetricsSurface:
    def test_prometheus_round_trip_from_live_database(self):
        database = _seeded_database(trace=True)
        database.execute(JOIN)
        parsed = parse_prometheus(database.prometheus_metrics())
        names = {name for name, _, _ in parsed["samples"]}
        assert "repro_statements_total" in names
        assert "repro_plan_cache_hits" in names
        assert "repro_tables_t" in names
        samples = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in parsed["samples"]
        }
        assert samples[("repro_statements_total", (("statement", "select"),))] == 1

    def test_metrics_snapshot_shape(self):
        database = _seeded_database()
        database.execute(JOIN)
        metrics = database.metrics()
        assert set(metrics) == {"counters", "gauges", "histograms", "providers"}
        assert metrics["providers"]["plan_cache"]["entries"] == 1
        latency = metrics["histograms"]["repro_statement_seconds"]["values"]
        assert sum(series["count"] for series in latency.values()) >= 1
        json.dumps(metrics)


class TestServerObservability:
    @pytest.fixture()
    def served(self):
        from repro.server import start_server_thread

        database = _seeded_database(trace=True)
        handle = start_server_thread(database)
        yield database, handle.address
        handle.stop()

    def test_wire_metrics_traces_events(self, served):
        from repro.client import connect as client_connect

        database, (host, port) = served
        _grow_stale(database)
        with client_connect(host, port) as connection:
            result = connection.execute(JOIN).result
            assert result.trace_id is not None
            metrics = connection.metrics()
            assert metrics["counters"]["repro_statements_total"]["values"]["select"] >= 1
            assert metrics["providers"]["server"]["connections_served"] >= 1
            parsed = parse_prometheus(connection.prometheus_metrics())
            assert "repro_statements_total" in parsed["families"]
            traces = connection.traces(limit=1)
            assert traces[0]["trace_id"] == result.trace_id
            connection.refresh_cached_plans()
            events = connection.events(kind="reoptimization")
            assert events and events[-1]["deltas"]

    def test_error_frames_echo_the_trace_id(self, served):
        from repro.client import connect as client_connect

        database, (host, port) = served
        with client_connect(host, port) as connection:
            with pytest.raises(SqlError) as excinfo:
                connection.execute("SELECT nope FROM t")
            assert excinfo.value.trace_id == database.traces()[-1]["trace_id"]
