"""Unit tests for the observability primitives (repro.obs)."""

import json

import pytest

from repro.obs.events import EventLog
from repro.obs.metrics import (
    MAX_LABEL_VALUES,
    OVERFLOW_LABEL,
    MetricsRegistry,
    parse_prometheus,
    sanitize_metric_name,
)
from repro.obs.render import render_event, render_stats, render_trace
from repro.obs.trace import (
    Trace,
    Tracer,
    fanout_span,
    install_fanout_sink,
    remove_fanout_sink,
    span,
)


class TestTracer:
    def test_disabled_tracer_hands_out_nothing(self):
        tracer = Tracer(enabled=False)
        assert tracer.begin("SELECT 1") is None
        assert tracer.finish(None) is None
        assert tracer.traces() == []

    def test_span_helper_is_noop_without_trace(self):
        with span(None, "parse") as opened:
            assert opened is None

    def test_spans_nest_and_freeze(self):
        tracer = Tracer(enabled=True)
        trace = tracer.begin("SELECT 1", session="s-1")
        with trace.span("plan") as plan:
            plan.attributes["cost"] = 3.5
            with trace.span("optimize"):
                pass
        with trace.span("execute"):
            pass
        snapshot = tracer.finish(trace)
        assert snapshot["statement"] == "SELECT 1"
        assert snapshot["session"] == "s-1"
        assert snapshot["status"] == "ok"
        children = snapshot["spans"]["children"]
        assert [child["name"] for child in children] == ["plan", "execute"]
        assert children[0]["attributes"] == {"cost": 3.5}
        assert [grand["name"] for grand in children[0]["children"]] == ["optimize"]
        assert snapshot["elapsed_ms"] >= 0.0

    def test_error_status_and_ring_capacity(self):
        tracer = Tracer(enabled=True, capacity=3)
        for index in range(5):
            trace = tracer.begin(f"SELECT {index}")
            if index == 4:
                trace.finish(status="error", error="boom")
            tracer.finish(trace)
        traces = tracer.traces()
        assert len(traces) == 3  # ring keeps only the newest
        assert traces[-1]["status"] == "error"
        assert traces[-1]["error"] == "boom"
        assert tracer.traces(limit=1)[0]["statement"] == "SELECT 4"
        tracer.clear()
        assert tracer.traces() == []

    def test_post_hoc_spans_attach_under_parent(self):
        trace = Trace("SELECT 1")
        with trace.span("execute") as execute:
            pass
        trace.add_span("operator", 1.0, 1.5, attributes={"est_rows": "3"}, parent=execute)
        child = trace.to_dict()["spans"]["children"][0]["children"][0]
        assert child["name"] == "operator"
        assert child["seconds"] == pytest.approx(0.5)
        assert child["attributes"]["est_rows"] == "3"


class TestFanoutSink:
    def test_no_sink_is_noop(self):
        remove_fanout_sink()
        with fanout_span("morsel-fanout", morsels=4) as attrs:
            assert attrs is None

    def test_sink_collects_events_with_late_attributes(self):
        sink = []
        install_fanout_sink(sink)
        try:
            with fanout_span("shm-export", operator="scan#1") as attrs:
                attrs["shm_bytes"] = 1024
        finally:
            remove_fanout_sink()
        assert len(sink) == 1
        event = sink[0]
        assert event["name"] == "shm-export"
        assert event["end"] >= event["start"]
        assert event["attributes"] == {"operator": "scan#1", "shm_bytes": 1024}


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_statements_total", label="statement")
        counter.inc(label="select")
        counter.inc(2, label="select")
        counter.inc(label="insert")
        assert counter.value(label="select") == 3
        assert counter.total() == 4
        gauge = registry.gauge("repro_connections")
        gauge.set(5)
        gauge.dec()
        assert gauge.value() == 4
        histogram = registry.histogram("repro_latency_seconds")
        for value in (0.1, 0.2, 0.3, 0.4):
            histogram.observe(value)
        series = histogram.snapshot()[None]
        assert series["count"] == 4
        assert series["sum"] == pytest.approx(1.0)
        assert series["p50"] == pytest.approx(0.2)
        assert series["p99"] == pytest.approx(0.4)

    def test_instruments_are_idempotent_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        with pytest.raises(ValueError):
            registry.gauge("c")

    def test_label_cardinality_cap(self):
        registry = MetricsRegistry()
        counter = registry.counter("shapes", label="shape")
        for index in range(MAX_LABEL_VALUES + 50):
            counter.inc(label=f"shape-{index}")
        values = counter.values()
        assert len(values) == MAX_LABEL_VALUES + 1
        assert values[OVERFLOW_LABEL] == 50

    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("a b-c.d") == "a_b_c_d"
        assert sanitize_metric_name("0abc").startswith("_")

    def test_prometheus_round_trip(self):
        """The acceptance-criterion round trip: export → parse → same values."""
        registry = MetricsRegistry()
        counter = registry.counter("repro_statements_total", "Statements.", label="statement")
        counter.inc(3, label="select")
        counter.inc(label='we"ird\nlabel')
        registry.gauge("repro_queue_depth", "Depth.").set(7)
        histogram = registry.histogram("repro_latency_seconds", "Latency.")
        histogram.observe(0.25)
        histogram.observe(0.75)
        registry.register_provider("plan_cache", lambda: {"hits": 11, "misses": 2})
        text = registry.to_prometheus()
        parsed = parse_prometheus(text)
        assert parsed["families"]["repro_statements_total"] == "counter"
        assert parsed["families"]["repro_queue_depth"] == "gauge"
        assert parsed["families"]["repro_latency_seconds"] == "summary"
        samples = {
            (name, tuple(sorted(labels.items()))): value
            for name, labels, value in parsed["samples"]
        }
        assert samples[("repro_statements_total", (("statement", "select"),))] == 3
        assert samples[("repro_statements_total", (("statement", 'we"ird\nlabel'),))] == 1
        assert samples[("repro_queue_depth", ())] == 7
        assert samples[("repro_latency_seconds_count", ())] == 2
        assert samples[("repro_latency_seconds_sum", ())] == pytest.approx(1.0)
        assert samples[("repro_plan_cache_hits", ())] == 11
        assert samples[("repro_plan_cache_misses", ())] == 2

    def test_to_dict_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c", label="k").inc(label="v")
        registry.histogram("h").observe(1.0)
        registry.register_provider("p", lambda: {"nested": {"x": 1}})
        json.dumps(registry.to_dict())


class TestEventLog:
    def test_record_filter_and_limit(self):
        log = EventLog()
        log.record("slow_query", statement="SELECT 1", elapsed_ms=12.0)
        log.record("reoptimization", query="q1")
        log.record("reoptimization", query="q2")
        assert log.count() == 3
        assert log.count("reoptimization") == 2
        events = log.events(kind="reoptimization")
        assert [event["query"] for event in events] == ["q1", "q2"]
        assert [event["seq"] for event in events] == [2, 3]
        assert log.events(limit=1)[0]["query"] == "q2"

    def test_capacity_bounds_the_log(self):
        log = EventLog(capacity=2)
        for index in range(5):
            log.record("slow_query", index=index)
        events = log.events()
        assert [event["index"] for event in events] == [3, 4]
        # seq keeps counting even as old events fall off
        assert events[-1]["seq"] == 5


class TestRender:
    def test_render_stats_nested_table(self):
        text = render_stats(
            {
                "tables": {"t": 3, "u": 10},
                "catalog_version": 4,
                "plan_cache": {"hits": 1, "misses": 2, "entries": 1},
                "empty": {},
                "ratio": 0.251234567,
            }
        )
        lines = text.splitlines()
        assert "tables:" in lines[0]
        assert "  t  3" in text
        assert "plan_cache:" in text
        assert "  hits     1" in text  # keys aligned to the widest sibling ("entries")
        assert "(empty)" in text
        assert "0.251235" in text  # floats via %.6g
        assert "{" not in text  # no raw dict reprs anywhere

    def test_render_trace(self):
        tracer = Tracer(enabled=True)
        trace = tracer.begin("SELECT 1", session="s-9")
        with trace.span("execute", engine="vectorized"):
            pass
        snapshot = tracer.finish(trace)
        text = render_trace(snapshot)
        assert snapshot["trace_id"] in text
        assert "status=ok" in text
        assert "session=s-9" in text
        assert "statement: SELECT 1" in text
        assert "execute" in text and "engine=vectorized" in text

    def test_render_event(self):
        log = EventLog()
        event = log.record(
            "reoptimization",
            query="q1",
            plan_before="a\n  b",
            deltas=[{"kind": "join-selectivity"}],
        )
        text = render_event(event)
        assert text.startswith("#1  reoptimization")
        assert "query: q1" in text
        assert "    a" in text and "      b" in text  # multi-line block
        assert "join-selectivity" in text
