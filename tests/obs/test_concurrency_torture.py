"""Torture test: writers hammer a served database while a reader scrapes.

Eight worker threads execute statements against a :class:`Database` behind
the wire server while a reader thread concurrently scrapes every
observability surface (``metrics()``, ``traces()``, ``events()``,
``stats()``, the Prometheus text).  The assertions are the classic
shared-mutable-state failure modes: lost counter updates, ``dict changed
size during iteration``, and non-monotonic histogram totals.
"""

import threading

from repro.api.database import Database
from repro.client import connect as client_connect
from repro.obs.metrics import parse_prometheus
from repro.server import start_server_thread

WRITERS = 8
STATEMENTS_PER_WRITER = 30
SEED_STATEMENTS = 3  # the CREATE/INSERT/ANALYZE that build the fixture


class TestObservabilityUnderConcurrency:
    def test_no_lost_updates_and_no_iteration_errors(self):
        database = Database(trace=True, slow_query_ms=0.0)
        database.execute_script(
            "CREATE TABLE t (a INTEGER, b INTEGER); "
            "INSERT INTO t VALUES (1, 1), (2, 4), (3, 9); "
            "ANALYZE t"
        )
        handle = start_server_thread(database)
        host, port = handle.address
        stop_reading = threading.Event()
        errors = []
        totals = []

        def writer(index: int) -> None:
            try:
                with client_connect(host, port) as connection:
                    for step in range(STATEMENTS_PER_WRITER):
                        if step % 3 == 2:
                            connection.execute(
                                f"INSERT INTO t VALUES ({index * 1000 + step}, {step})"
                            )
                        else:
                            # vary the shape so the latency histogram grows labels
                            connection.execute(f"SELECT a FROM t WHERE b >= {step % 5}")
                    connection.refresh_cached_plans()
            except Exception as error:  # pragma: no cover - the assertion target
                errors.append(error)

        def reader() -> None:
            try:
                while not stop_reading.is_set():
                    metrics = database.metrics()
                    histogram = metrics["histograms"]["repro_statement_seconds"]["values"]
                    totals.append(sum(series["count"] for series in histogram.values()))
                    database.stats()
                    database.traces()
                    database.events()
                    parse_prometheus(database.prometheus_metrics())
            except Exception as error:  # pragma: no cover - the assertion target
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(index,)) for index in range(WRITERS)
        ]
        scraper = threading.Thread(target=reader)
        scraper.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop_reading.set()
        scraper.join()
        handle.stop()

        assert not errors, f"concurrent access raised: {errors!r}"

        executed = WRITERS * STATEMENTS_PER_WRITER + SEED_STATEMENTS
        counters = database.metrics_registry.to_dict()["counters"]
        statement_counts = counters["repro_statements_total"]["values"]
        # no lost updates: every statement is counted exactly once
        assert sum(statement_counts.values()) == executed
        assert statement_counts["select"] == WRITERS * 20
        assert statement_counts["insert"] == WRITERS * 10 + 1  # +1 seed insert
        assert database.stats()["statements"]["select"] == WRITERS * 20

        # the reader saw the histogram total only ever grow
        assert totals == sorted(totals)
        final = database.metrics()["histograms"]["repro_statement_seconds"]["values"]
        assert sum(series["count"] for series in final.values()) == executed

        # every statement also left a slow-query event (threshold 0) and the
        # ring of traces stayed bounded
        assert database.event_log.count("slow_query") == executed
        assert len(database.traces()) <= database.tracer.capacity
