"""Acceptance test: the observability layer on the paper's core scenario.

Runs the TPC-H skew sweep (zipf z=1.0, SF 0.01, assumed-uniform starting
statistics) with tracing enabled and checks the two contracts that make
the traces trustworthy:

* every traced query's per-operator spans carry est/observed row counts
  that match ``EXPLAIN ANALYZE`` **byte for byte**, in plan pre-order;
* ``refresh_cached_plans()`` flips at least one plan, and the flip shows
  up in the re-optimization event log with the exact before/after plan
  shapes the harness observed.
"""

from __future__ import annotations

import re

import pytest

from benchmarks.tpch import dbgen, runner

SCALE = 0.01
SKEW = 1.0
FLIP_PRONE = ("q04", "q09", "q10", "q21")

SUPPORTED, _ = runner.load_queries()
EST_ACTUAL = re.compile(r"est_rows=([^,)]+), actual_rows=([^,)]+)\)")


@pytest.fixture(scope="module")
def traced_connection(tmp_path_factory):
    directory = tmp_path_factory.mktemp("tpch_traced_zipf")
    dbgen.generate(str(directory), scale_factor=SCALE, skew=SKEW)
    connection = runner.load_connection(str(directory), trace=True)
    runner.assume_uniform_statistics(connection.database)
    yield connection
    connection.close()


def _operator_pairs_from_trace(trace: dict) -> list:
    """(est_rows, actual_rows) per operator span, in plan pre-order."""
    execute = trace["spans"]["children"][-1]
    assert execute["name"] == "execute"
    return [
        (span["attributes"]["est_rows"], span["attributes"]["actual_rows"])
        for span in execute["children"]
        if span["name"] == "operator"
    ]


class TestTracedSkewSweep:
    def test_operator_spans_match_explain_analyze_and_flip_is_logged(
        self, traced_connection
    ):
        database = traced_connection.database
        queries = {name: SUPPORTED[name] for name in FLIP_PRONE}

        before: dict = {}
        for name, sql in queries.items():
            before[name] = runner.run_query(traced_connection, name, sql)
            trace = database.traces(limit=1)[0]
            assert trace["status"] == "ok"
            pairs = _operator_pairs_from_trace(trace)

            # EXPLAIN ANALYZE re-executes the same cached plan; its printed
            # est/actual pairs must equal the trace's, byte for byte.
            analyzed = database.execute(f"EXPLAIN ANALYZE {sql}")
            expected = EST_ACTUAL.findall(analyzed.plan_text)
            assert pairs == expected, f"{name}: trace disagrees with EXPLAIN ANALYZE"
            assert len(pairs) > 0
            assert all(actual != "?" for _, actual in pairs), (
                f"{name}: an operator has no observed cardinality"
            )

        refreshed = database.refresh_cached_plans()
        assert refreshed >= 1, "no cached plan was re-optimized under skew"

        flipped = []
        for name, sql in queries.items():
            after = runner.run_query(traced_connection, name, sql)
            if after.plan != before[name].plan:
                flipped.append((name, before[name].plan, after.plan))
        assert flipped, "no plan flipped after refresh_cached_plans() under skew"

        events = database.events(kind="reoptimization")
        flip_events = [event for event in events if event["plan_flipped"]]
        assert flip_events, "a flipped plan must leave a re-optimization event"
        # the event log's shapes come from the same plan_shape() the sweep
        # uses, so each flip must have an event with the identical
        # before/after skeletons
        by_shapes = {
            (event["plan_before"], event["plan_after"]): event for event in flip_events
        }
        for name, plan_before, plan_after in flipped:
            event = by_shapes.get((plan_before, plan_after))
            assert event is not None, f"{name}: flip missing from the event log"
            assert event["deltas"], "a flip without deltas cannot happen"
