"""Integration tests spanning optimizer, engine and adaptive layers."""

import pytest

from repro.adaptive.controller import AdaptationMode, AdaptiveController
from repro.adaptive.monitor import RuntimeMonitor
from repro.engine.executor import PlanExecutor
from repro.optimizer.baselines.system_r import SystemROptimizer
from repro.optimizer.baselines.volcano import VolcanoOptimizer
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.optimizer.tables import PruningConfig
from repro.streams.linear_road import (
    GeneratorConfig,
    LinearRoadGenerator,
    linear_road_catalog,
    segtolls_query,
)
from repro.workloads.queries import q3s, workload_join_queries
from repro.workloads.tpch import (
    catalog_from_data,
    generate_tpch_data,
    partition_rows,
    tpch_catalog,
)


class TestOptimizeThenExecute:
    def test_all_workload_queries_optimize_under_all_optimizers(self):
        catalog = tpch_catalog(0.01)
        for name, query in workload_join_queries().items():
            costs = set()
            for optimizer_cls in (DeclarativeOptimizer, VolcanoOptimizer, SystemROptimizer):
                result = optimizer_cls(query, catalog).optimize()
                costs.add(round(result.cost, 6))
            assert len(costs) == 1, f"optimizers disagree on {name}: {costs}"

    def test_execution_feedback_loop_improves_estimates(self):
        """Optimize with analytic stats, execute on skewed data, feed observed
        cardinalities back, and verify the re-optimized estimates match what
        was actually observed (the Figure 6 pipeline)."""
        data = generate_tpch_data(scale_factor=0.0005, skew=0.8, seed=21)
        query = q3s()
        catalog = catalog_from_data(data)
        optimizer = DeclarativeOptimizer(query, catalog)
        plan = optimizer.optimize().plan

        execution = PlanExecutor(query, data).execute(plan)
        monitor = RuntimeMonitor(cumulative=False)
        monitor.record_execution(execution)
        deltas = monitor.produce_deltas(optimizer)
        optimizer.reoptimize(deltas)

        for expression, observed in execution.observed_cardinalities.items():
            if len(expression) < 2 or observed == 0:
                continue
            estimate = optimizer.cost_model.summary(expression).cardinality
            assert estimate == pytest.approx(observed, rel=0.05)

    def test_partitioned_reoptimization_rounds(self):
        """Re-optimize after each skewed partition, as in Figure 6."""
        data = generate_tpch_data(scale_factor=0.0005, skew=0.5, seed=8)
        partitions = partition_rows(data["lineitem"], 3)
        query = q3s()
        catalog = catalog_from_data(data)
        optimizer = DeclarativeOptimizer(query, catalog)
        optimizer.optimize()
        monitor = RuntimeMonitor(cumulative=True)
        for part in partitions:
            slice_data = dict(data)
            slice_data["lineitem"] = part
            plan = optimizer.best_plan()
            execution = PlanExecutor(query, slice_data).execute(plan)
            monitor.record_execution(execution)
            deltas = monitor.produce_deltas(optimizer)
            result = optimizer.reoptimize(deltas) if deltas else None
            if result is not None:
                assert result.cost > 0


class TestStreamingEndToEnd:
    def test_adaptive_matches_static_results_and_reports_overheads(self):
        query = segtolls_query()
        generator = LinearRoadGenerator(GeneratorConfig(reports_per_second=15, cars=60, seed=17))
        slices = generator.generate_slices(6, 1.0)
        adaptive = AdaptiveController(
            query, linear_road_catalog(), mode=AdaptationMode.INCREMENTAL
        ).run(slices)
        sample = [row for stream_slice in slices for row in stream_slice.rows]
        static_catalog = linear_road_catalog(sample)
        static_plan = DeclarativeOptimizer(query, static_catalog).optimize().plan
        static = AdaptiveController(
            query,
            static_catalog,
            mode=AdaptationMode.STATIC,
            static_plan=static_plan,
        ).run(slices)
        assert [r.output_rows for r in adaptive.reports] == [r.output_rows for r in static.reports]
        assert adaptive.total_reoptimize_seconds > 0
        assert static.total_reoptimize_seconds == 0


class TestPruningDoesNotChangeResults:
    def test_executed_results_identical_across_pruning_configs(self):
        data = generate_tpch_data(scale_factor=0.0005, seed=30)
        catalog = catalog_from_data(data)
        query = q3s()
        reference = None
        for config in (PruningConfig.none(), PruningConfig.evita_raced(), PruningConfig.full()):
            plan = DeclarativeOptimizer(query, catalog, pruning=config).optimize().plan
            rows = PlanExecutor(query, data).execute(plan).rows
            key = sorted((row["lineitem.l_orderkey"], row["orders.o_orderdate"]) for row in rows)
            if reference is None:
                reference = key
            else:
                assert key == reference
