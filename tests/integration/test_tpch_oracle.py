"""Differential oracle: every supported TPC-H query vs sqlite3.

The tier-1 acceptance gate for the TPC-H harness: at SF 0.01, under both
a uniform and a zipf-skewed (z=1.0) dataset, every query the manifest
marks supported must return the same result set as stdlib sqlite3 on the
row *and* vectorized engines, compared under the shared normalization
(positional columns, tolerance floats, unordered rows absent ORDER BY).

DuckDB, when installed, is exercised as a second reference; where it is
absent the tests skip rather than fail (nothing is ever installed here).
"""

from __future__ import annotations

import pytest

from benchmarks.tpch import dbgen, oracle, runner

SCALE = 0.01
DATASETS = {"uniform": 0.0, "zipf": 1.0}
ENGINES = ("row", "vectorized")

SUPPORTED, EXCLUDED = runner.load_queries()


@pytest.fixture(scope="session")
def data_dirs(tmp_path_factory):
    dirs = {}
    for label, skew in DATASETS.items():
        directory = tmp_path_factory.mktemp(f"tpch_{label}")
        dbgen.generate(str(directory), scale_factor=SCALE, skew=skew)
        dirs[label] = str(directory)
    return dirs


@pytest.fixture(scope="session")
def sqlite_oracles(data_dirs):
    oracles = {label: oracle.SqliteOracle(path) for label, path in data_dirs.items()}
    yield oracles
    for reference in oracles.values():
        reference.close()


@pytest.fixture(scope="session")
def connections(data_dirs):
    opened = {
        (label, engine): runner.load_connection(path, engine=engine)
        for label, path in data_dirs.items()
        for engine in ENGINES
    }
    yield opened
    for connection in opened.values():
        connection.close()


class TestManifest:
    def test_supported_subset_is_large_enough(self):
        assert len(SUPPORTED) >= 15
        assert len(SUPPORTED) + len(EXCLUDED) == 22

    def test_every_excluded_query_has_a_reason(self):
        for name, reason in EXCLUDED.items():
            assert reason, f"{name} excluded without a reason"


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("dataset", sorted(DATASETS))
@pytest.mark.parametrize("name", sorted(SUPPORTED))
class TestSqliteDifferential:
    def test_query_matches_oracle(
        self, name, dataset, engine, sqlite_oracles, connections
    ):
        sql = SUPPORTED[name]
        expected = sqlite_oracles[dataset].run(sql)
        run = runner.run_query(connections[(dataset, engine)], name, sql)
        outcome = oracle.compare_results(
            expected, run.rows, oracle.query_is_ordered(sql)
        )
        assert outcome.matches, (
            f"{name} [{dataset}/{engine}] diverges from sqlite3: "
            + "; ".join(outcome.differences)
        )
        # The uniform SF 0.01 dataset must actually exercise the queries
        # (every supported one returns rows except q07, whose two-nation
        # pairing is legitimately sparse at this scale).  Skewed data may
        # starve specific-nation queries — matching emptiness is fine.
        if dataset == "uniform" and name not in ("q07",):
            assert outcome.row_count > 0


@pytest.mark.skipif(not oracle.duckdb_available(), reason="duckdb not installed")
@pytest.mark.parametrize("name", sorted(SUPPORTED))
class TestDuckDBDifferential:
    def test_query_matches_duckdb(self, name, data_dirs, connections):
        sql = SUPPORTED[name]
        with oracle.DuckDBOracle(data_dirs["uniform"]) as reference:
            expected = reference.run(sql)
        run = runner.run_query(connections[("uniform", "vectorized")], name, sql)
        outcome = oracle.compare_results(
            expected, run.rows, oracle.query_is_ordered(sql)
        )
        assert outcome.matches, (
            f"{name} [duckdb] diverges: " + "; ".join(outcome.differences)
        )


class TestSkewReoptimization:
    def test_refresh_cached_plans_flips_at_least_one_plan(self, data_dirs):
        """The paper's scenario: plans built under assumed-uniform stats
        get re-optimized into a different shape once observed
        cardinalities from skewed execution are folded back in."""
        flip_prone = {
            name: sql
            for name, sql in SUPPORTED.items()
            if name in ("q04", "q09", "q10", "q21")
        }
        entries = runner.skew_sweep(
            {DATASETS["zipf"]: data_dirs["zipf"]}, flip_prone
        )
        assert any(entry.flipped for entry in entries), (
            "no plan flipped after refresh_cached_plans() under skew"
        )
        # Flipped or not, results must stay equivalent after
        # re-optimization (tolerance compare: a different join order
        # accumulates float sums in a different row order).
        for entry in entries:
            outcome = oracle.compare_results(
                entry.before.rows, entry.after.rows, ordered=False
            )
            assert outcome.matches, (
                f"{entry.name}: replan changed the result: "
                + "; ".join(outcome.differences)
            )
