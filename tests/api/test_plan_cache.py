"""Unit tests for the LRU plan cache and statement normalization."""

import pytest

import repro
from repro.api.plan_cache import CachedPlan, PlanCache
from repro.sql.parser import normalize_statement


def _entry(version=0):
    return CachedPlan(
        query=None, optimization=None, optimizer=None, parameter_count=0, catalog_version=version
    )


class TestNormalization:
    def test_whitespace_case_and_semicolon_insensitive(self):
        kinds_and_keys = {
            normalize_statement(sql)
            for sql in (
                "SELECT a FROM t WHERE b > 1",
                "select   a\nfrom t  where b > 1;",
                "SELECT a FROM t -- trailing comment\nWHERE b > 1",
            )
        }
        assert len(kinds_and_keys) == 1
        kind, key = kinds_and_keys.pop()
        assert kind == "select"
        assert key == "select a from t where b > 1"

    def test_explain_prefix_stripped_but_kind_kept(self):
        plain = normalize_statement("SELECT a FROM t")
        explain = normalize_statement("EXPLAIN SELECT a FROM t")
        analyze = normalize_statement("explain analyze SELECT a FROM t")
        assert plain[1] == explain[1] == analyze[1]
        assert (plain[0], explain[0], analyze[0]) == ("select", "explain", "explain analyze")

    def test_hints_and_strings_preserved(self):
        _, with_hint = normalize_statement("SELECT a FROM t WHERE b = 1 /*+ selectivity=0.5 */")
        _, without = normalize_statement("SELECT a FROM t WHERE b = 1")
        assert with_hint != without
        _, quoted = normalize_statement("SELECT a FROM t WHERE c = 'x y'")
        assert "'x y'" in quoted

    def test_ddl_is_other(self):
        assert normalize_statement("CREATE TABLE t (a INTEGER)")[0] == "other"
        assert normalize_statement("ANALYZE t")[0] == "other"
        assert normalize_statement("INSERT INTO t VALUES (1)")[0] == "other"


class TestPlanCache:
    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.store(("a", ()), _entry())
        cache.store(("b", ()), _entry())
        assert cache.lookup(("a", ()), 0) is not None  # refresh "a"
        cache.store(("c", ()), _entry())  # evicts "b"
        assert cache.lookup(("b", ()), 0) is None
        assert cache.lookup(("a", ()), 0) is not None
        assert cache.evictions == 1

    def test_version_mismatch_invalidates(self):
        cache = PlanCache()
        cache.store(("a", ()), _entry(version=1))
        assert cache.lookup(("a", ()), 2) is None
        assert cache.invalidations == 1
        assert len(cache) == 0

    def test_signature_separates_entries(self):
        cache = PlanCache()
        cache.store(("a", ("int",)), _entry())
        assert cache.lookup(("a", ("float",)), 0) is None
        assert cache.lookup(("a", ("int",)), 0) is not None

    def test_zero_capacity_disables(self):
        cache = PlanCache(capacity=0)
        cache.store(("a", ()), _entry())
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PlanCache(capacity=-1)

    def test_stats_counters(self):
        cache = PlanCache(capacity=4)
        cache.store(("a", ()), _entry())
        cache.lookup(("a", ()), 0)
        cache.lookup(("missing", ()), 0)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["entries"] == 1
        cache.clear()
        assert cache.stats()["invalidations"] == 1


class TestCacheBehaviorEndToEnd:
    def test_differently_spelled_statements_share_entry(self):
        conn = repro.connect()
        conn.executescript(
            "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2); ANALYZE t"
        )
        db = conn.database
        db.execute("SELECT a FROM t WHERE a > 1")
        result = db.execute("select  a   from t where a > 1;")
        assert result.from_cache is True

    def test_explain_warms_select(self):
        conn = repro.connect()
        conn.executescript("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); ANALYZE t")
        db = conn.database
        db.execute("EXPLAIN SELECT a FROM t WHERE a > 0")
        assert db.execute("SELECT a FROM t WHERE a > 0").from_cache is True

    def test_capacity_respected_end_to_end(self):
        conn = repro.connect(plan_cache_size=2)
        conn.executescript("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); ANALYZE t")
        db = conn.database
        for bound in range(4):
            db.execute(f"SELECT a FROM t WHERE a > {bound}")
        assert db.stats()["plan_cache"]["entries"] == 2
        assert db.stats()["plan_cache"]["evictions"] == 2


class TestIndexDdlInvalidation:
    """CREATE INDEX / DROP INDEX must bump Catalog.version and evict plans."""

    def _database(self):
        conn = repro.connect()
        conn.executescript(
            "CREATE TABLE t (a INTEGER, b INTEGER); "
            "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30); ANALYZE t"
        )
        return conn.database

    def test_create_index_bumps_version_and_evicts(self):
        db = self._database()
        version = db.catalog.version
        db.execute("SELECT a FROM t WHERE a = 2")
        assert db.execute("SELECT a FROM t WHERE a = 2").from_cache is True
        db.execute("CREATE INDEX idx_a ON t (a)")
        assert db.catalog.version == version + 1
        invalidations = db.stats()["plan_cache"]["invalidations"]
        replanned = db.execute("SELECT a FROM t WHERE a = 2")
        assert replanned.from_cache is False
        assert db.stats()["plan_cache"]["invalidations"] == invalidations + 1

    def test_drop_index_bumps_version_and_evicts(self):
        db = self._database()
        db.execute("CREATE INDEX idx_a ON t (a)")
        version = db.catalog.version
        db.execute("SELECT a FROM t WHERE a = 2")
        assert db.execute("SELECT a FROM t WHERE a = 2").from_cache is True
        db.execute("DROP INDEX idx_a")
        assert db.catalog.version == version + 1
        assert db.execute("SELECT a FROM t WHERE a = 2").from_cache is False

    def test_unrelated_statements_do_not_invalidate(self):
        db = self._database()
        db.execute("SELECT a FROM t WHERE a = 2")
        db.execute("SELECT b FROM t WHERE b = 20")  # another entry, no DDL
        assert db.execute("SELECT a FROM t WHERE a = 2").from_cache is True


class TestTableScopedInvalidation:
    """Statistics changes invalidate only plans referencing the mutated table.

    Load-bearing for the serving tier: the plan cache is shared across
    connections, so one client's INSERT stream must not flush every other
    client's cached plans.
    """

    def _database(self):
        conn = repro.connect()
        conn.executescript(
            "CREATE TABLE t (a INTEGER, b INTEGER); "
            "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30); ANALYZE t; "
            "CREATE TABLE audit (x INTEGER); ANALYZE audit"
        )
        return conn.database

    def test_insert_elsewhere_keeps_plan_cached(self):
        db = self._database()
        db.execute("SELECT a FROM t WHERE a = 2")
        db.execute("INSERT INTO audit VALUES (1)")
        assert db.execute("SELECT a FROM t WHERE a = 2").from_cache is True

    def test_analyze_elsewhere_keeps_plan_cached(self):
        db = self._database()
        db.execute("SELECT a FROM t WHERE a = 2")
        db.execute("ANALYZE audit")
        assert db.execute("SELECT a FROM t WHERE a = 2").from_cache is True

    def test_insert_into_referenced_table_still_invalidates(self):
        db = self._database()
        db.execute("SELECT a FROM t WHERE a = 2")
        db.execute("INSERT INTO t VALUES (4, 40)")
        assert db.execute("SELECT a FROM t WHERE a = 2").from_cache is False

    def test_join_plan_invalidated_by_either_side(self):
        db = self._database()
        sql = "SELECT a FROM t, audit WHERE a = x"
        db.execute(sql)
        db.execute("INSERT INTO audit VALUES (9)")
        assert db.execute(sql).from_cache is False

    def test_table_versions_stamped_on_entry(self):
        db = self._database()
        db.execute("SELECT a FROM t WHERE a = 2")
        (entry,) = db.plan_cache.cached_plans()
        assert [table for table, _ in entry.table_versions] == ["t"]


class TestSingleFlightPlanning:
    def test_concurrent_misses_plan_once(self, monkeypatch):
        """8 threads missing on the same cold statement run one optimizer."""
        import threading
        import time

        import repro.api.database as database_module

        db = repro.connect().database
        db.execute_script(
            "CREATE TABLE t (a INTEGER, b INTEGER); "
            "INSERT INTO t VALUES (1, 10), (2, 20); ANALYZE t"
        )

        real_optimizer = database_module.DeclarativeOptimizer
        optimize_calls = []
        call_lock = threading.Lock()

        class CountingOptimizer(real_optimizer):
            def optimize(self):
                with call_lock:
                    optimize_calls.append(threading.current_thread().name)
                time.sleep(0.05)  # hold the stripe so every thread piles up
                return super().optimize()

        monkeypatch.setattr(database_module, "DeclarativeOptimizer", CountingOptimizer)

        barrier = threading.Barrier(8)
        errors = []

        def client():
            try:
                barrier.wait()
                result = db.execute("SELECT a FROM t WHERE b = $1", (10,))
                assert result.rows == [{"t.a": 1}]
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors, errors[:3]
        assert len(optimize_calls) == 1
        stats = db.plan_cache.stats()
        assert stats["entries"] == 1
        # Every execution is accounted exactly once: one planning miss, the
        # other seven picked up the single-flight winner's entry as hits.
        assert stats["hits"] + stats["misses"] == 8
        assert stats["hits"] == 7
        assert stats["misses"] == 1
