"""End-to-end tests for the DB-API surface: connect → Connection → Cursor."""

import pytest

import repro
from repro.common.errors import SqlBindingError, SqlError
from repro.engine.vectorized.columns import ColumnTable
from repro.workloads.tpch import catalog_from_data, generate_tpch_data

SETUP = [
    "CREATE TABLE part (pk INTEGER, size INTEGER, price FLOAT, label STRING, "
    "PRIMARY KEY (pk), INDEX (size))",
    "INSERT INTO part VALUES (1, 10, 1.5, 'a'), (2, 20, 2.5, 'b'), "
    "(3, 30, 3.5, 'c'), (4, 40, 4.5, 'd')",
    "ANALYZE part",
]


@pytest.fixture
def conn():
    connection = repro.connect()
    for statement in SETUP:
        connection.execute(statement)
    return connection


class TestConnect:
    def test_connect_returns_connection(self):
        connection = repro.connect()
        assert isinstance(connection, repro.Connection)
        assert isinstance(connection.database, repro.Database)
        assert connection.database.table_names == []

    def test_version_and_all_exported(self):
        assert repro.__version__
        for name in ("connect", "Database", "Connection", "Cursor", "SqlError"):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_database_hands_out_more_connections(self, conn):
        other = conn.database.connect()
        rows = other.execute("SELECT pk FROM part WHERE size > 25").fetchall()
        assert [row[0] for row in rows] == [3, 4]


class TestDdlAndDml:
    def test_create_insert_select_roundtrip(self, conn):
        cur = conn.execute("SELECT pk, label FROM part WHERE price > 2.0 ORDER BY pk")
        assert cur.fetchall() == [(2, "b"), (3, "c"), (4, "d")]
        assert [entry[0] for entry in cur.description] == ["part.pk", "part.label"]

    def test_created_table_is_columnar(self, conn):
        stored = conn.database.store["part"]
        assert isinstance(stored, ColumnTable)
        assert stored.row_count == 4

    def test_create_registers_schema_and_indexes(self, conn):
        catalog = conn.database.catalog
        table = catalog.schema.table("part")
        assert table.primary_key == "pk"
        assert table.column_names == ["pk", "size", "price", "label"]
        assert catalog.index_on("part", "size") is not None
        assert catalog.index_on("part", "pk").unique

    def test_insert_updates_row_count_stats(self, conn):
        before = conn.database.catalog.row_count("part")
        cur = conn.execute("INSERT INTO part (pk, size) VALUES (9, 90)")
        assert cur.rowcount == 1
        assert conn.database.catalog.row_count("part") == before + 1
        rows = conn.execute("SELECT price FROM part WHERE pk = 9").fetchall()
        assert rows == [(None,)]  # unspecified columns fill with NULL

    def test_analyze_builds_histograms(self, conn):
        stats = conn.database.catalog.table_stats("part")
        assert stats.row_count == 4
        assert stats.column("size").histogram is not None
        assert stats.column("size").min_value == 10

    def test_insert_explicit_columns_reordered(self, conn):
        conn.execute("INSERT INTO part (size, pk) VALUES (50, 5)")
        rows = conn.execute("SELECT size FROM part WHERE pk = 5").fetchall()
        assert rows == [(50,)]

    def test_executemany_inserts(self, conn):
        cur = conn.cursor()
        cur.executemany(
            "INSERT INTO part VALUES (?, ?, ?, ?)",
            [(6, 60, 6.5, "f"), (7, 70, 7.5, "g")],
        )
        assert cur.rowcount == 2
        assert conn.database.stored_row_count("part") == 6

    def test_executemany_rejects_select(self, conn):
        with pytest.raises(SqlError, match="executemany"):
            conn.cursor().executemany("SELECT pk FROM part WHERE size > ?", [(1,), (2,)])

    def test_executemany_select_rejection_has_no_side_effects(self, conn):
        before = conn.database.stats()
        with pytest.raises(SqlError):
            conn.cursor().executemany("SELECT pk FROM part WHERE size > ?", [(1,), (2,)])
        after = conn.database.stats()
        assert after["executions"] == before["executions"]
        assert after["plan_cache"] == before["plan_cache"]
        assert after["monitor"] == before["monitor"]


class TestCopy(object):
    def test_copy_loads_csv_and_refreshes_stats(self, conn, tmp_path):
        path = tmp_path / "parts.csv"
        path.write_text(
            "pk,size,price,label\n"
            "10,100,10.5,x\n"
            "11,110,,y\n"  # empty -> NULL
            "12,120,12.5,z\n"
        )
        cur = conn.execute(f"COPY part FROM '{path}'")
        assert cur.rowcount == 3
        assert conn.database.stored_row_count("part") == 7
        stats = conn.database.catalog.table_stats("part")
        assert stats.row_count == 7
        assert stats.column("size").max_value == 120
        rows = conn.execute("SELECT price FROM part WHERE pk = 11").fetchall()
        assert rows == [(None,)]

    def test_copy_missing_file(self, conn):
        with pytest.raises(SqlError, match="cannot read"):
            conn.execute("COPY part FROM '/nonexistent/nope.csv'")

    def test_copy_unknown_csv_column(self, conn, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("pk,nope\n1,2\n")
        with pytest.raises(SqlError, match="nope"):
            conn.execute(f"COPY part FROM '{path}'")

    def test_copy_bad_value(self, conn, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("pk,size\n1,abc\n")
        with pytest.raises(SqlError, match="cannot convert"):
            conn.execute(f"COPY part FROM '{path}'")

    def test_copy_quoted_field_with_delimiter_roundtrips(self, conn, tmp_path):
        path = tmp_path / "quoted.csv"
        path.write_text('pk,label\n10,"a,b"\n11,"say ""hi"""\n')
        assert conn.execute(f"COPY part FROM '{path}'").rowcount == 2
        rows = conn.execute("SELECT pk, label FROM part WHERE pk > 9 ORDER BY pk")
        assert rows.fetchall() == [(10, "a,b"), (11, 'say "hi"')]

    def test_copy_null_token_lets_empty_string_roundtrip(self, conn, tmp_path):
        path = tmp_path / "nulls.csv"
        path.write_text("pk,label\n10,NULL\n11,\n")
        cur = conn.execute(f"COPY part FROM '{path}' WITH (NULL 'NULL')")
        assert cur.rowcount == 2
        rows = conn.execute("SELECT pk, label FROM part WHERE pk > 9 ORDER BY pk")
        # only the explicit token is NULL; the empty field stays ''.
        assert rows.fetchall() == [(10, None), (11, "")]

    def test_copy_custom_delimiter(self, conn, tmp_path):
        path = tmp_path / "pipes.csv"
        path.write_text("pk|size|price|label\n10|100|10.5|x,y\n")
        cur = conn.execute(f"COPY part FROM '{path}' WITH (DELIMITER '|')")
        assert cur.rowcount == 1
        rows = conn.execute("SELECT label FROM part WHERE pk = 10")
        assert rows.fetchall() == [("x,y",)]


class TestPreparedStatements:
    def test_positional_and_numbered_parameters(self, conn):
        positional = conn.execute(
            "SELECT pk FROM part WHERE size > ? AND price < ?", (15, 4.0)
        ).fetchall()
        numbered = conn.execute(
            "SELECT pk FROM part WHERE size > $1 AND price < $2", (15, 4.0)
        ).fetchall()
        assert positional == numbered == [(2,), (3,)]

    def test_reexecution_hits_plan_cache(self, conn):
        sql = "SELECT pk FROM part WHERE size > ?"
        first = conn.database.execute(sql, (15,))
        assert first.from_cache is False
        second = conn.database.execute(sql, (25,))
        assert second.from_cache is True
        assert [row["part.pk"] for row in second.rows] == [3, 4]
        hits = conn.database.stats()["plan_cache"]["hits"]
        assert hits >= 1

    def test_cached_execution_still_records_observations(self, conn):
        sql = "SELECT pk FROM part WHERE size > ?"
        before = conn.database.monitor.observation_count()
        conn.execute(sql, (15,))
        conn.execute(sql, (25,))
        after = conn.database.monitor.observation_count()
        assert after >= before + 2

    def test_wrong_arity_raises(self, conn):
        with pytest.raises(SqlError, match="expects 2 parameters, got 1"):
            conn.execute("SELECT pk FROM part WHERE size > ? AND price < ?", (15,))

    def test_unknown_parameter_index(self, conn):
        with pytest.raises(SqlError, match="expects 3 parameters, got 2"):
            conn.execute("SELECT pk FROM part WHERE size > $1 AND price < $3", (15, 4.0))

    def test_parameters_on_parameterless_statement(self, conn):
        with pytest.raises(SqlError, match="expects 0 parameters"):
            conn.execute("SELECT pk FROM part", (1,))

    def test_insert_with_parameter_type_mismatch(self, conn):
        with pytest.raises(SqlError, match="type mismatch"):
            conn.execute("INSERT INTO part VALUES (?, ?, ?, ?)", (8, "wide", 8.5, "h"))

    def test_select_parameter_type_mismatch_is_sql_error(self, conn):
        with pytest.raises(SqlError, match="type mismatch for parameter \\$1"):
            conn.execute("SELECT pk FROM part WHERE size > ?", ("wide",))

    def test_select_null_parameter_rejected(self, conn):
        with pytest.raises(SqlError, match="NULL"):
            conn.execute("SELECT pk FROM part WHERE size > ?", (None,))

    def test_prepare_warms_cache(self, conn):
        entry = conn.database.prepare("SELECT pk FROM part WHERE size > ?", (0,))
        assert entry.parameter_count == 1
        result = conn.database.execute("SELECT pk FROM part WHERE size > ?", (0,))
        assert result.from_cache is True


class TestPlanCacheInvalidation:
    def test_ddl_invalidates(self, conn):
        sql = "SELECT pk FROM part WHERE size > ?"
        conn.execute(sql, (15,))
        conn.execute("CREATE TABLE other (x INTEGER)")
        result = conn.database.execute(sql, (15,))
        assert result.from_cache is False
        assert conn.database.stats()["plan_cache"]["invalidations"] >= 1

    def test_statistics_change_invalidates(self, conn):
        sql = "SELECT pk FROM part WHERE size > ?"
        conn.execute(sql, (15,))
        conn.execute("ANALYZE part")
        result = conn.database.execute(sql, (15,))
        assert result.from_cache is False

    def test_insert_invalidates(self, conn):
        sql = "SELECT pk FROM part WHERE size > ?"
        conn.execute(sql, (15,))
        conn.execute("INSERT INTO part VALUES (8, 80, 8.5, 'h')")
        result = conn.database.execute(sql, (15,))
        assert result.from_cache is False


class TestCursorProtocol:
    def test_fetchone_fetchmany_iteration(self, conn):
        cur = conn.execute("SELECT pk FROM part ORDER BY pk")
        assert cur.fetchone() == (1,)
        assert cur.fetchmany(2) == [(2,), (3,)]
        assert cur.fetchall() == [(4,)]
        assert cur.fetchone() is None

    def test_cursor_iterates(self, conn):
        cur = conn.execute("SELECT pk FROM part ORDER BY pk")
        assert [row for row in cur] == [(1,), (2,), (3,), (4,)]

    def test_explain_rows_are_plan_lines(self, conn):
        cur = conn.execute("EXPLAIN SELECT pk FROM part WHERE size > 15")
        assert cur.description[0][0] == "plan"
        lines = [line for (line,) in cur.fetchall()]
        assert any("seq-scan" in line for line in lines)

    def test_ddl_has_no_description(self, conn):
        cur = conn.execute("CREATE TABLE empty_one (x INTEGER)")
        assert cur.description is None
        assert cur.fetchall() == []

    def test_closed_cursor_rejects_execution(self, conn):
        cur = conn.cursor()
        cur.close()
        with pytest.raises(SqlError, match="cursor is closed"):
            cur.execute("SELECT pk FROM part")

    def test_closed_connection_rejects_cursors(self):
        connection = repro.connect()
        connection.close()
        with pytest.raises(SqlError, match="connection is closed"):
            connection.cursor()

    def test_commit_is_noop_rollback_unsupported(self, conn):
        conn.commit()
        with pytest.raises(SqlError, match="rollback"):
            conn.rollback()


class TestBothEngines:
    @pytest.mark.parametrize("engine", ["row", "vectorized"])
    def test_full_sql_lifecycle_per_engine(self, engine, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1,1.0\n2,2.0\n3,3.0\n")
        connection = repro.connect(engine=engine)
        connection.executescript(
            "CREATE TABLE t (a INTEGER, b FLOAT); " f"COPY t FROM '{path}'; " "ANALYZE t"
        )
        rows = connection.execute("SELECT a FROM t WHERE b > ?", (1.5,)).fetchall()
        assert rows == [(2,), (3,)]
        result = connection.database.execute("EXPLAIN ANALYZE SELECT a FROM t WHERE b > ?", (1.5,))
        assert f"engine: {engine}" in result.plan_text


class TestWrappedData:
    def test_connect_over_existing_catalog_and_rows(self):
        data = generate_tpch_data(scale_factor=0.0002, seed=5)
        connection = repro.connect(catalog_from_data(data), data)
        rows = connection.execute(
            "SELECT r_name FROM region ORDER BY r_name LIMIT 2"
        ).fetchall()
        assert len(rows) == 2
        # row-list tables accept INSERT too
        count = connection.database.stored_row_count("region")
        connection.execute("INSERT INTO region VALUES (99, 99)")
        assert connection.database.stored_row_count("region") == count + 1

    def test_connect_data_without_stats_is_analyzed(self):
        data = generate_tpch_data(scale_factor=0.0002, seed=5)
        from repro.workloads.tpch import tpch_schema
        from repro.catalog.catalog import Catalog

        connection = repro.connect(Catalog(tpch_schema()), data)
        assert connection.database.catalog.has_stats("region")


class TestAdaptiveRefresh:
    def test_two_plans_sharing_an_expression_both_receive_deltas(self):
        """Per-consumer emission state: one cached plan consuming a shared
        observation must not suppress the delta for the next plan."""
        data = generate_tpch_data(scale_factor=0.0005, seed=3)
        connection = repro.connect(catalog_from_data(data), data)
        database = connection.database
        shared_join = (
            "FROM customer, orders WHERE c_custkey = o_custkey"
        )
        first = f"SELECT c_name {shared_join} AND o_orderdate < 400"
        second = f"SELECT c_name {shared_join} AND o_orderdate < 1500"
        connection.execute(first)
        connection.execute(second)
        entries = database.plan_cache.cached_plans()
        assert len(entries) == 2
        deltas_per_entry = [
            database.monitor.produce_deltas(entry.optimizer) for entry in entries
        ]
        assert all(deltas for deltas in deltas_per_entry), (
            "every cached plan must receive its own statistics deltas"
        )

    def test_scoped_observations_not_conflated_across_queries(self):
        """Same join footprint, different filters: each query's optimizer is
        fed its own observed cardinality, not a blended mean."""
        data = generate_tpch_data(scale_factor=0.0005, seed=3)
        connection = repro.connect(catalog_from_data(data), data)
        database = connection.database
        filtered = (
            "SELECT c_name FROM customer, orders "
            "WHERE c_custkey = o_custkey AND o_orderdate < 100"
        )
        unfiltered = "SELECT c_name FROM customer, orders WHERE c_custkey = o_custkey"
        filtered_result = database.execute(filtered)
        unfiltered_result = database.execute(unfiltered)
        from repro.relational.expressions import Expression

        join_expr = Expression.of("customer", "orders")
        scoped_filtered = database.monitor.observed(
            join_expr, filtered_result.query.name
        )
        scoped_unfiltered = database.monitor.observed(
            join_expr, unfiltered_result.query.name
        )
        assert scoped_filtered == filtered_result.execution.observed_cardinalities[join_expr]
        assert (
            scoped_unfiltered
            == unfiltered_result.execution.observed_cardinalities[join_expr]
        )
        assert scoped_filtered < scoped_unfiltered

    def test_refresh_cached_plans_runs_incremental_reoptimize(self):
        data = generate_tpch_data(scale_factor=0.0005, seed=3)
        connection = repro.connect(catalog_from_data(data), data)
        sql = (
            "SELECT l_orderkey, o_orderdate, o_shippriority "
            "FROM customer, orders, lineitem "
            "WHERE c_custkey = o_custkey AND o_orderkey = l_orderkey "
            "AND c_mktsegment = 2"
        )
        connection.execute(sql)
        connection.execute(sql)
        database = connection.database
        assert database.monitor.observation_count() > 0
        database.refresh_cached_plans()  # must not raise; plans stay executable
        rows_before = connection.execute(sql).fetchall()
        assert rows_before == connection.execute(sql).fetchall()


class TestSessionShim:
    def test_session_warns_deprecation(self):
        data = generate_tpch_data(scale_factor=0.0002, seed=5)
        with pytest.warns(DeprecationWarning, match="repro.connect"):
            repro.Session(catalog_from_data(data), data=data)

    def test_session_still_executes(self):
        data = generate_tpch_data(scale_factor=0.0002, seed=5)
        with pytest.warns(DeprecationWarning):
            session = repro.Session(catalog_from_data(data), data=data)
        result = session.execute("SELECT r_name FROM region LIMIT 1")
        assert result.row_count == 1

    def test_session_sees_data_loaded_through_sql(self):
        """A dataless Session that CREATEs and INSERTs through SQL can SELECT:
        the no-data complaint consults the live store, not the constructor."""
        from repro.catalog.catalog import Catalog
        from repro.relational.schema import Schema

        with pytest.warns(DeprecationWarning):
            session = repro.Session(Catalog(Schema()))
        session.execute("CREATE TABLE t (a INTEGER)")
        session.execute("INSERT INTO t VALUES (1), (2)")
        result = session.execute("SELECT a FROM t")
        assert result.row_count == 2


class TestErrors:
    def test_binding_error_type(self, conn):
        with pytest.raises(SqlBindingError):
            conn.execute("SELECT nope FROM part")

    def test_select_unknown_table(self, conn):
        with pytest.raises(SqlBindingError, match="unknown table"):
            conn.execute("SELECT x FROM missing")

    def test_duplicate_create_table(self, conn):
        with pytest.raises(SqlBindingError, match="already exists"):
            conn.execute("CREATE TABLE part (x INTEGER)")
