"""Tests for the Linear Road-style stream workload."""

from repro.streams.linear_road import (
    GeneratorConfig,
    LinearRoadGenerator,
    linear_road_catalog,
    linear_road_schema,
    segtolls_query,
)


class TestSchemaAndQuery:
    def test_schema_has_stream_table(self):
        schema = linear_road_schema()
        assert schema.has_table("carlocstr")
        assert schema.table("carlocstr").has_column("carid")

    def test_segtolls_is_five_way_windowed_self_join(self):
        query = segtolls_query()
        assert len(query.relations) == 5
        assert all(ref.table == "carlocstr" for ref in query.relations)
        assert all(ref.is_windowed for ref in query.relations)
        assert query.has_aggregation

    def test_segtolls_join_graph_connected(self):
        query = segtolls_query()
        assert query.is_connected(query.aliases)

    def test_segtolls_validates_against_schema(self):
        segtolls_query().validate_against(linear_road_schema())


class TestGenerator:
    def test_report_volume(self):
        generator = LinearRoadGenerator(GeneratorConfig(reports_per_second=50, seed=1))
        rows = generator.generate(10)
        assert len(rows) == 500
        assert {row["t"] for row in rows} == {float(s) for s in range(10)}

    def test_values_within_domains(self):
        config = GeneratorConfig(expressways=3, segments=50, cars=100, seed=2)
        rows = LinearRoadGenerator(config).generate(5)
        assert all(0 <= row["expway"] < 3 for row in rows)
        assert all(0 <= row["seg"] < 50 for row in rows)
        assert all(0 <= row["carid"] < 100 for row in rows)
        assert all(row["dir"] in (0, 1) for row in rows)

    def test_determinism_per_seed(self):
        rows_a = LinearRoadGenerator(GeneratorConfig(seed=7)).generate(3)
        rows_b = LinearRoadGenerator(GeneratorConfig(seed=7)).generate(3)
        assert rows_a == rows_b

    def test_distribution_drifts_over_time(self):
        """The hotspot moves, so early and late slices favour different segments."""
        config = GeneratorConfig(reports_per_second=200, hotspot_period=40.0, seed=3,
                                 burst_probability=0.0)
        rows = LinearRoadGenerator(config).generate(40)

        def top_segment(second_range):
            counts = {}
            for row in rows:
                if row["t"] in second_range:
                    counts[row["seg"]] = counts.get(row["seg"], 0) + 1
            return max(counts, key=counts.get)

        early = top_segment({float(s) for s in range(5)})
        late = top_segment({float(s) for s in range(18, 23)})
        assert early != late

    def test_generate_slices(self):
        generator = LinearRoadGenerator(GeneratorConfig(reports_per_second=10, seed=1))
        slices = generator.generate_slices(10, 2.0)
        assert len(slices) == 5
        assert sum(s.row_count for s in slices) == 100


class TestCatalog:
    def test_catalog_without_sample_has_default_stats(self):
        catalog = linear_road_catalog()
        assert catalog.row_count("carlocstr") == 1000.0

    def test_catalog_from_sample(self):
        rows = LinearRoadGenerator(GeneratorConfig(reports_per_second=20, seed=1)).generate(5)
        catalog = linear_road_catalog(rows)
        assert catalog.row_count("carlocstr") == len(rows)
        assert catalog.column_stats("carlocstr", "seg").distinct_count > 1
