"""Tests for stream slices and window materialization."""

import pytest

from repro.common.errors import ExecutionError
from repro.relational.expressions import ColumnRef
from repro.relational.query import QueryBuilder, WindowKind, WindowSpec
from repro.streams.windows import StreamSlice, WindowManager, slice_stream


def make_rows(count, start_time=0.0):
    return [{"carid": i % 5, "seg": i % 10, "t": start_time + i * 0.1} for i in range(count)]


def windowed_query():
    return (
        QueryBuilder("w")
        .scan("s", alias="time_win", window=WindowSpec(WindowKind.TIME, 10))
        .scan(
            "s",
            alias="tuple_win",
            window=WindowSpec(WindowKind.TUPLES, 2, (ColumnRef("tuple_win", "carid"),)),
        )
        .join_on("time_win.carid", "tuple_win.carid")
        .build()
    )


class TestSliceStream:
    def test_rows_grouped_by_duration(self):
        rows = [{"t": float(t)} for t in range(10)]
        slices = slice_stream(rows, 2.0)
        assert len(slices) == 5
        assert all(s.row_count == 2 for s in slices)
        assert slices[0].duration == 2.0

    def test_empty_stream(self):
        assert slice_stream([], 1.0) == []

    def test_invalid_duration(self):
        with pytest.raises(ExecutionError):
            slice_stream([{"t": 0.0}], 0.0)

    def test_gaps_produce_empty_slices(self):
        rows = [{"t": 0.0}, {"t": 5.0}]
        slices = slice_stream(rows, 1.0)
        assert len(slices) == 6
        assert slices[1].row_count == 0


class TestWindowManager:
    def test_time_window_evicts_old_rows(self):
        query = windowed_query()
        manager = WindowManager(query)
        first = StreamSlice(0, 0.0, 1.0, tuple({"carid": 1, "seg": 1, "t": 0.5} for _ in range(3)))
        manager.advance(first)
        assert len(manager.materialize()["time_win"]) == 3
        # Advance far past the 10-second window.
        later = StreamSlice(1, 20.0, 21.0, ({"carid": 2, "seg": 2, "t": 20.5},))
        manager.advance(later)
        contents = manager.materialize()["time_win"]
        assert len(contents) == 1
        assert contents[0]["carid"] == 2

    def test_tuple_window_keeps_last_n_per_partition(self):
        query = windowed_query()
        manager = WindowManager(query)
        rows = tuple({"carid": 1, "seg": seg, "t": float(seg)} for seg in range(5))
        manager.advance(StreamSlice(0, 0.0, 5.0, rows))
        contents = manager.materialize()["tuple_win"]
        assert len(contents) == 2
        assert {row["seg"] for row in contents} == {3, 4}

    def test_tuple_window_partitions_independent(self):
        query = windowed_query()
        manager = WindowManager(query)
        rows = tuple(
            {"carid": carid, "seg": seg, "t": float(seg)}
            for carid in (1, 2)
            for seg in range(3)
        )
        manager.advance(StreamSlice(0, 0.0, 3.0, rows))
        contents = manager.materialize()["tuple_win"]
        assert len(contents) == 4  # 2 per partition, 2 partitions

    def test_static_tables_pass_through(self):
        query = windowed_query()
        manager = WindowManager(query)
        manager.set_static_table("lookup", [{"k": 1}])
        assert manager.materialize()["lookup"] == [{"k": 1}]

    def test_window_sizes_reported(self):
        query = windowed_query()
        manager = WindowManager(query)
        manager.advance(StreamSlice(0, 0.0, 1.0, ({"carid": 1, "seg": 1, "t": 0.5},)))
        sizes = manager.window_sizes()
        assert sizes["time_win"] == 1
        assert sizes["tuple_win"] == 1
        assert manager.total_window_rows() == 2

    def test_non_windowed_alias_rejected(self):
        query = QueryBuilder("q").scan("t", alias="a").build()
        manager = WindowManager(query)
        # No windowed aliases: materialize only returns static tables.
        assert manager.materialize() == {}
