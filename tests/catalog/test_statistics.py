"""Tests for column and table statistics."""

import pytest

from repro.catalog.statistics import ColumnStats, TableStats
from repro.common.errors import CatalogError


class TestColumnStats:
    def test_from_values(self):
        stats = ColumnStats.from_values([1, 2, 2, 3, 3, 3])
        assert stats.distinct_count == 3
        assert stats.min_value == 1
        assert stats.max_value == 3
        assert stats.histogram is not None

    def test_from_empty_values(self):
        stats = ColumnStats.from_values([])
        assert stats.distinct_count == 0
        assert stats.histogram is None

    def test_validation(self):
        with pytest.raises(CatalogError):
            ColumnStats(distinct_count=-1)
        with pytest.raises(CatalogError):
            ColumnStats(distinct_count=1, null_fraction=2.0)

    def test_scaled(self):
        stats = ColumnStats(distinct_count=100)
        assert stats.scaled(0.5).distinct_count == 50
        assert stats.scaled(0.0).distinct_count == 1.0
        assert stats.scaled(2.0).distinct_count == 100


class TestTableStats:
    def test_negative_row_count_rejected(self):
        with pytest.raises(CatalogError):
            TableStats(row_count=-1)

    def test_column_lookup(self):
        stats = TableStats(10, {"a": ColumnStats(distinct_count=5)})
        assert stats.column("a").distinct_count == 5
        assert stats.has_column("a")
        with pytest.raises(CatalogError):
            stats.column("missing")

    def test_distinct_defaults_to_row_count(self):
        stats = TableStats(42)
        assert stats.distinct("unknown") == 42
        assert stats.distinct("unknown", default=7) == 7

    def test_from_rows_numeric_columns(self):
        rows = [{"a": i, "b": i % 3} for i in range(30)]
        stats = TableStats.from_rows(rows)
        assert stats.row_count == 30
        assert stats.column("a").distinct_count == 30
        assert stats.column("b").distinct_count == 3

    def test_from_rows_non_numeric_column(self):
        rows = [{"name": f"x{i % 4}"} for i in range(20)]
        stats = TableStats.from_rows(rows)
        assert stats.column("name").distinct_count == 4
        assert stats.column("name").histogram is None

    def test_from_rows_empty(self):
        stats = TableStats.from_rows([])
        assert stats.row_count == 0
