"""Tests for the catalog (schema + statistics + indexes)."""

import pytest

from repro.catalog.catalog import Catalog
from repro.catalog.statistics import TableStats
from repro.common.errors import CatalogError
from repro.workloads.tpch import generate_tpch_data, tpch_catalog, tpch_schema


class TestCatalogBasics:
    def test_set_and_get_stats(self, two_table_schema):
        catalog = Catalog(two_table_schema)
        catalog.set_table_stats("emp", TableStats(100))
        assert catalog.has_stats("emp")
        assert catalog.row_count("emp") == 100
        assert not catalog.has_stats("dept")

    def test_unknown_table_stats_rejected(self, two_table_schema):
        catalog = Catalog(two_table_schema)
        with pytest.raises(CatalogError):
            catalog.set_table_stats("missing", TableStats(1))
        with pytest.raises(CatalogError):
            catalog.table_stats("dept")

    def test_index_lookup(self, two_table_schema):
        catalog = Catalog(two_table_schema)
        assert catalog.index_on("emp", "dept_id") is not None
        assert catalog.index_on("emp", "salary") is None
        assert len(catalog.indexes_on("emp")) == 2

    def test_update_row_count(self, two_table_schema):
        catalog = Catalog(two_table_schema)
        catalog.set_table_stats("emp", TableStats(100))
        catalog.update_row_count("emp", 500)
        assert catalog.row_count("emp") == 500

    def test_copy_is_independent(self, two_table_schema):
        catalog = Catalog(two_table_schema)
        catalog.set_table_stats("emp", TableStats(100))
        clone = catalog.copy()
        clone.update_row_count("emp", 999)
        assert catalog.row_count("emp") == 100


class TestTpchCatalog:
    def test_all_tables_have_stats(self):
        catalog = tpch_catalog(0.01)
        for table in tpch_schema().table_names:
            assert catalog.has_stats(table)

    def test_scale_factor_scales_large_tables(self):
        small = tpch_catalog(0.01)
        large = tpch_catalog(0.1)
        assert large.row_count("lineitem") > small.row_count("lineitem")
        # region/nation are fixed-size regardless of scale factor
        assert large.row_count("region") == small.row_count("region") == 5

    def test_relative_table_sizes(self):
        catalog = tpch_catalog(0.01)
        assert catalog.row_count("lineitem") > catalog.row_count("orders")
        assert catalog.row_count("orders") > catalog.row_count("customer")
        assert catalog.row_count("customer") > catalog.row_count("supplier")

    def test_from_data_matches_generated_rows(self):
        data = generate_tpch_data(scale_factor=0.0005, seed=1)
        catalog = Catalog.from_data(tpch_schema(), data)
        assert catalog.row_count("lineitem") == len(data["lineitem"])
        assert catalog.column_stats("orders", "o_custkey").distinct_count > 0
