"""Tests for equi-depth histograms."""

import pytest

from repro.catalog.histogram import Bucket, EquiDepthHistogram
from repro.common.errors import CatalogError


class TestBucket:
    def test_invalid_bounds_rejected(self):
        with pytest.raises(CatalogError):
            Bucket(low=10, high=5, row_count=1, distinct_count=1)

    def test_negative_counts_rejected(self):
        with pytest.raises(CatalogError):
            Bucket(low=0, high=1, row_count=-1, distinct_count=1)


class TestConstruction:
    def test_from_values_row_count_preserved(self):
        histogram = EquiDepthHistogram.from_values(list(range(1000)), 16)
        assert histogram.row_count == pytest.approx(1000)
        assert histogram.min_value == 0
        assert histogram.max_value == 999

    def test_from_values_rejects_empty(self):
        with pytest.raises(CatalogError):
            EquiDepthHistogram.from_values([])

    def test_bucket_count_capped_by_values(self):
        histogram = EquiDepthHistogram.from_values([1, 2, 3], 16)
        assert len(histogram.buckets) <= 3

    def test_uniform_histogram_totals(self):
        histogram = EquiDepthHistogram.uniform(0, 100, row_count=500, distinct_count=100)
        assert histogram.row_count == pytest.approx(500)
        assert histogram.distinct_count == pytest.approx(100, rel=0.1)

    def test_uniform_rejects_bad_bounds(self):
        with pytest.raises(CatalogError):
            EquiDepthHistogram.uniform(10, 0, 100, 10)

    def test_needs_buckets(self):
        with pytest.raises(CatalogError):
            EquiDepthHistogram([])


class TestSelectivity:
    def test_range_half(self):
        histogram = EquiDepthHistogram.from_values(list(range(100)), 10)
        assert histogram.selectivity_range(None, 49) == pytest.approx(0.5, abs=0.08)

    def test_range_everything(self):
        histogram = EquiDepthHistogram.from_values(list(range(100)), 10)
        assert histogram.selectivity_range(None, None) == pytest.approx(1.0, abs=0.01)

    def test_range_outside_domain(self):
        histogram = EquiDepthHistogram.from_values(list(range(100)), 10)
        assert histogram.selectivity_range(200, 300) == 0.0
        assert histogram.selectivity_range(None, -5) == 0.0

    def test_equality_uniform_data(self):
        histogram = EquiDepthHistogram.from_values(list(range(100)), 10)
        assert histogram.selectivity_eq(42) == pytest.approx(0.01, abs=0.01)

    def test_equality_out_of_range(self):
        histogram = EquiDepthHistogram.from_values(list(range(100)), 10)
        assert histogram.selectivity_eq(-10) == 0.0
        assert histogram.selectivity_eq(1000) == 0.0

    def test_skewed_data_equality_reflects_frequency(self):
        # 90% of rows are the value 1, the rest spread over 2..11.
        values = [1] * 900 + list(range(2, 12)) * 10
        histogram = EquiDepthHistogram.from_values(values, 8)
        assert histogram.selectivity_eq(1) > 0.3

    def test_selectivity_bounded(self):
        histogram = EquiDepthHistogram.from_values(list(range(50)), 4)
        for low, high in [(None, 10), (10, None), (5, 45), (None, None)]:
            value = histogram.selectivity_range(low, high)
            assert 0.0 <= value <= 1.0
