"""Property-based tests for histogram selectivity estimates."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.histogram import EquiDepthHistogram

value_lists = st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=300)


@given(value_lists, st.integers(min_value=1, max_value=32))
@settings(max_examples=150, deadline=None)
def test_row_count_preserved(values, buckets):
    histogram = EquiDepthHistogram.from_values(values, buckets)
    assert histogram.row_count == len(values)


@given(value_lists, st.integers(min_value=-1200, max_value=1200))
@settings(max_examples=150, deadline=None)
def test_selectivities_are_probabilities(values, probe):
    histogram = EquiDepthHistogram.from_values(values, 8)
    assert 0.0 <= histogram.selectivity_eq(probe) <= 1.0
    assert 0.0 <= histogram.selectivity_range(None, probe) <= 1.0
    assert 0.0 <= histogram.selectivity_range(probe, None) <= 1.0


@given(value_lists)
@settings(max_examples=100, deadline=None)
def test_full_range_selectivity_is_one(values):
    histogram = EquiDepthHistogram.from_values(values, 8)
    assert histogram.selectivity_range(None, None) >= 0.99


@given(value_lists, st.integers(min_value=-1000, max_value=1000),
       st.integers(min_value=-1000, max_value=1000))
@settings(max_examples=150, deadline=None)
def test_range_monotone_in_width(values, low, high):
    histogram = EquiDepthHistogram.from_values(values, 8)
    low, high = min(low, high), max(low, high)
    narrow = histogram.selectivity_range(low, high)
    wide = histogram.selectivity_range(low - 100, high + 100)
    assert wide >= narrow - 1e-9
