"""Tests for the adaptive query processing controller."""

import pytest

from repro.adaptive.controller import AdaptationMode, AdaptiveController
from repro.common.errors import AdaptationError
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.streams.linear_road import (
    GeneratorConfig,
    LinearRoadGenerator,
    linear_road_catalog,
    segtolls_query,
)


@pytest.fixture(scope="module")
def small_stream():
    generator = LinearRoadGenerator(GeneratorConfig(reports_per_second=20, cars=80, seed=5))
    return generator.generate_slices(8, 1.0)


@pytest.fixture(scope="module")
def query():
    return segtolls_query()


class TestAdaptiveController:
    def test_incremental_mode_processes_every_slice(self, query, small_stream):
        controller = AdaptiveController(
            query, linear_road_catalog(), mode=AdaptationMode.INCREMENTAL
        )
        result = controller.run(small_stream)
        assert len(result.reports) == len(small_stream)
        assert result.total_reoptimize_seconds > 0
        assert result.total_execute_seconds > 0

    def test_non_incremental_mode_runs(self, query, small_stream):
        controller = AdaptiveController(
            query, linear_road_catalog(), mode=AdaptationMode.NON_INCREMENTAL
        )
        result = controller.run(small_stream)
        assert len(result.reports) == len(small_stream)

    def test_both_modes_produce_same_output_rows(self, query, small_stream):
        """Plan choice must never change query results."""
        incremental = AdaptiveController(
            query, linear_road_catalog(), mode=AdaptationMode.INCREMENTAL
        ).run(small_stream)
        non_incremental = AdaptiveController(
            query, linear_road_catalog(), mode=AdaptationMode.NON_INCREMENTAL
        ).run(small_stream)
        per_slice_incremental = [report.output_rows for report in incremental.reports]
        per_slice_non_incremental = [report.output_rows for report in non_incremental.reports]
        assert per_slice_incremental == per_slice_non_incremental

    def test_static_mode_requires_plan(self, query):
        with pytest.raises(AdaptationError):
            AdaptiveController(query, linear_road_catalog(), mode=AdaptationMode.STATIC)

    def test_static_mode_never_reoptimizes(self, query, small_stream):
        sample = [row for stream_slice in small_stream for row in stream_slice.rows]
        catalog = linear_road_catalog(sample)
        plan = DeclarativeOptimizer(query, catalog).optimize().plan
        controller = AdaptiveController(
            query, catalog, mode=AdaptationMode.STATIC, static_plan=plan
        )
        result = controller.run(small_stream)
        assert result.total_reoptimize_seconds == 0
        assert result.plan_switches == 0

    def test_reoptimize_every_n_slices(self, query, small_stream):
        controller = AdaptiveController(
            query,
            linear_road_catalog(),
            mode=AdaptationMode.INCREMENTAL,
            reoptimize_every=4,
        )
        result = controller.run(small_stream)
        reopt_slices = [r.slice_index for r in result.reports if r.reoptimize_seconds > 0]
        # only slice 0 and every 4th slice afterwards may re-optimize
        assert all(index % 4 == 0 for index in reopt_slices)

    def test_migration_only_on_plan_change(self, query, small_stream):
        controller = AdaptiveController(
            query, linear_road_catalog(), mode=AdaptationMode.INCREMENTAL
        )
        result = controller.run(small_stream)
        for report in result.reports:
            if not report.plan_changed:
                assert report.migration.joins_rebuilt == 0

    def test_incremental_reopt_time_decays(self, query):
        """Figure 9's qualitative behaviour: as statistics converge, the
        incremental re-optimizer has less and less to do."""
        generator = LinearRoadGenerator(GeneratorConfig(reports_per_second=20, cars=80, seed=11))
        slices = generator.generate_slices(16, 1.0)
        controller = AdaptiveController(
            query, linear_road_catalog(), mode=AdaptationMode.INCREMENTAL
        )
        reports = controller.run(slices).reports
        first_half = sum(r.reoptimize_seconds for r in reports[1:8]) / 7
        second_half = sum(r.reoptimize_seconds for r in reports[8:]) / len(reports[8:])
        assert second_half <= first_half * 1.5
