"""Tests for plan-switch state migration."""

from repro.adaptive.migration import StateMigrator
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.relational.expressions import Expression
from repro.relational.plan import PhysicalOperator, PhysicalPlan
from repro.workloads.queries import q3s
from repro.workloads.tpch import tpch_catalog


def hash_join_plan(left_alias, right_alias):
    left = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf(left_alias))
    right = PhysicalPlan(PhysicalOperator.SEQ_SCAN, Expression.leaf(right_alias))
    return PhysicalPlan(
        PhysicalOperator.HASH_JOIN,
        Expression.of(left_alias, right_alias),
        children=(left, right),
    )


class TestStateMigrator:
    def test_no_migration_for_identical_plans(self):
        query = q3s()
        migrator = StateMigrator(query)
        plan = hash_join_plan("customer", "orders")
        stats = migrator.migrate(plan, plan, {"customer": [], "orders": []})
        assert stats.joins_rebuilt == 0
        assert stats.tuples_rehashed == 0

    def test_initial_plan_requires_build(self):
        query = q3s()
        migrator = StateMigrator(query)
        plan = hash_join_plan("customer", "orders")
        data = {"customer": [{"c_custkey": 1}], "orders": [{"o_custkey": 1}, {"o_custkey": 2}]}
        stats = migrator.migrate(None, plan, data)
        assert stats.joins_rebuilt == 1
        assert stats.tuples_rehashed == 2  # build side = orders

    def test_plan_switch_rebuilds_new_build_sides(self):
        query = q3s()
        migrator = StateMigrator(query)
        old_plan = hash_join_plan("customer", "orders")
        new_plan = hash_join_plan("orders", "customer")
        data = {"customer": [{"c_custkey": 1}] * 3, "orders": [{"o_custkey": 1}] * 5}
        stats = migrator.migrate(old_plan, new_plan, data)
        assert stats.joins_rebuilt == 1
        assert stats.tuples_rehashed == 3  # the new build side is customer
        assert stats.elapsed_seconds >= 0.0

    def test_real_optimizer_plans_migrate(self):
        query = q3s()
        catalog = tpch_catalog(0.01)
        plan = DeclarativeOptimizer(query, catalog).optimize().plan
        migrator = StateMigrator(query)
        data = {alias: [] for alias in query.aliases}
        stats = migrator.migrate(None, plan, data)
        assert stats.joins_rebuilt >= 1
