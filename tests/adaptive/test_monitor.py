"""Tests for the runtime statistics monitor."""

import pytest

from repro.adaptive.monitor import ObservationHistory, RuntimeMonitor
from repro.engine.executor import ExecutionResult
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.relational.expressions import Expression
from repro.workloads.queries import q3s
from repro.workloads.tpch import tpch_catalog


def execution_with(cards):
    return ExecutionResult(rows=[], observed_cardinalities=dict(cards))


class TestObservationHistory:
    def test_latest_and_mean(self):
        history = ObservationHistory()
        history.add(10.0)
        history.add(20.0)
        assert history.latest == 20.0
        assert history.mean == 15.0


class TestRecording:
    def test_cumulative_vs_noncumulative(self):
        expr = Expression.of("customer", "orders")
        cumulative = RuntimeMonitor(cumulative=True)
        latest_only = RuntimeMonitor(cumulative=False)
        for monitor in (cumulative, latest_only):
            monitor.record_execution(execution_with({expr: 100}))
            monitor.record_execution(execution_with({expr: 300}))
        assert cumulative.observed(expr) == 200.0
        assert latest_only.observed(expr) == 300.0

    def test_unobserved_expression_returns_none(self):
        monitor = RuntimeMonitor()
        assert monitor.observed(Expression.of("a", "b")) is None

    def test_window_sizes_recorded(self):
        monitor = RuntimeMonitor(cumulative=False)
        monitor.record_window_sizes({"r1": 50, "r2": 3})
        assert monitor.observed_alias_rows("r1") == 50.0
        assert monitor.observed_alias_rows("missing") is None

    def test_operator_seconds_accumulate_across_slices(self):
        monitor = RuntimeMonitor()
        first = ExecutionResult(
            rows=[], operator_timings={"seq-scan (a)#1": 0.5, "pipelined-hash-join (a b)#0": 2.0}
        )
        second = ExecutionResult(rows=[], operator_timings={"seq-scan (a)#1": 0.25})
        monitor.record_execution(first)
        monitor.record_execution(second)
        assert monitor.operator_seconds() == {
            "seq-scan (a)#1": 0.75,
            "pipelined-hash-join (a b)#0": 2.0,
        }

    def test_operator_seconds_snapshot_is_detached(self):
        monitor = RuntimeMonitor()
        monitor.record_execution(ExecutionResult(rows=[], operator_timings={"sort (a)#0": 1.0}))
        snapshot = monitor.operator_seconds()
        snapshot["sort (a)#0"] = 99.0
        assert monitor.operator_seconds()["sort (a)#0"] == 1.0

    def test_expressions_sorted_smallest_first(self):
        monitor = RuntimeMonitor()
        monitor.record_execution(
            execution_with(
                {
                    Expression.of("a", "b", "c"): 5,
                    Expression.leaf("a"): 10,
                    Expression.of("a", "b"): 7,
                }
            )
        )
        sizes = [len(expression) for expression in monitor.expressions()]
        assert sizes == sorted(sizes)


class TestDeltaProduction:
    def test_deltas_make_estimates_match_observations(self):
        catalog = tpch_catalog(0.01)
        optimizer = DeclarativeOptimizer(q3s(), catalog)
        optimizer.optimize()
        monitor = RuntimeMonitor(cumulative=False)
        expr = Expression.of("customer", "orders")
        monitor.record_execution(execution_with({expr: 4242}))
        deltas = monitor.produce_deltas(optimizer)
        assert deltas
        optimizer.reoptimize(deltas)
        assert optimizer.cost_model.summary(expr).cardinality == pytest.approx(4242, rel=1e-3)

    def test_leaf_observations_not_turned_into_selectivity_deltas(self):
        catalog = tpch_catalog(0.01)
        optimizer = DeclarativeOptimizer(q3s(), catalog)
        optimizer.optimize()
        monitor = RuntimeMonitor()
        monitor.record_execution(execution_with({Expression.leaf("orders"): 99}))
        assert monitor.produce_deltas(optimizer) == []

    def test_change_threshold_suppresses_tiny_updates(self):
        catalog = tpch_catalog(0.01)
        optimizer = DeclarativeOptimizer(q3s(), catalog)
        optimizer.optimize()
        monitor = RuntimeMonitor(cumulative=False, change_threshold=0.05)
        expr = Expression.of("customer", "orders")
        monitor.record_execution(execution_with({expr: 1000}))
        first = monitor.produce_deltas(optimizer)
        assert first
        # A 1% change is below the threshold: no new delta.
        monitor.record_execution(execution_with({expr: 1010}))
        assert monitor.produce_deltas(optimizer) == []
        # A 50% change passes the threshold.
        monitor.record_execution(execution_with({expr: 1500}))
        assert monitor.produce_deltas(optimizer)

    def test_window_size_deltas_scale_table_cardinality(self):
        catalog = tpch_catalog(0.01)
        optimizer = DeclarativeOptimizer(q3s(), catalog)
        optimizer.optimize()
        monitor = RuntimeMonitor(cumulative=False)
        monitor.record_window_sizes({"orders": 30_000})
        deltas = monitor.produce_deltas(optimizer)
        assert deltas
        factor = optimizer.cost_model.overlay.table_cardinality_factor("orders")
        assert factor == pytest.approx(30_000 / catalog.row_count("orders"), rel=1e-6)
