"""Shared fixtures: catalogs, queries and small generated datasets."""

from __future__ import annotations

import pytest

from repro.catalog.catalog import Catalog
from repro.relational.predicates import ComparisonOp
from repro.relational.query import Query, QueryBuilder
from repro.relational.schema import Column, DataType, Index, Schema, Table
from repro.workloads.queries import q3s, q5, q5s, q8joins, q10
from repro.workloads.tpch import generate_tpch_data, tpch_catalog, tpch_schema


@pytest.fixture(scope="session")
def catalog() -> Catalog:
    """An analytic TPC-H catalog at 1% scale (fast, deterministic)."""
    return tpch_catalog(scale_factor=0.01)


@pytest.fixture(scope="session")
def q3s_query() -> Query:
    return q3s()


@pytest.fixture(scope="session")
def q5_query() -> Query:
    return q5()


@pytest.fixture(scope="session")
def q5s_query() -> Query:
    return q5s()


@pytest.fixture(scope="session")
def q10_query() -> Query:
    return q10()


@pytest.fixture(scope="session")
def q8joins_query() -> Query:
    return q8joins()


@pytest.fixture(scope="session")
def tiny_data():
    """A tiny generated TPC-H dataset used by execution tests."""
    return generate_tpch_data(scale_factor=0.0005, skew=0.0, seed=3)


@pytest.fixture(scope="session")
def tpch_schema_fixture() -> Schema:
    return tpch_schema()


@pytest.fixture()
def two_table_schema() -> Schema:
    """A minimal two-table schema used by focused unit tests."""
    return Schema(
        tables=[
            Table(
                "emp",
                [Column("id"), Column("dept_id"), Column("salary", DataType.FLOAT)],
                primary_key="id",
            ),
            Table("dept", [Column("id"), Column("budget", DataType.FLOAT)], primary_key="id"),
        ],
        indexes=[
            Index("idx_emp_pk", "emp", "id", unique=True),
            Index("idx_emp_dept", "emp", "dept_id"),
            Index("idx_dept_pk", "dept", "id", unique=True),
        ],
    )


@pytest.fixture()
def two_table_query() -> Query:
    """emp join dept with one filter, used by focused unit tests."""
    return (
        QueryBuilder("emp_dept")
        .scan("emp", alias="e")
        .scan("dept", alias="d")
        .join_on("e.dept_id", "d.id")
        .filter("e.salary", ComparisonOp.GT, 1000.0, selectivity=0.5)
        .select("e.id", "d.id")
        .build()
    )
