"""Tests for the paper's query workload definitions."""

import pytest

from repro.relational.expressions import Expression
from repro.workloads.queries import (
    all_queries,
    q1,
    q3,
    q3s,
    q5,
    q5_expression_chain,
    q5s,
    q6,
    q8join,
    q8joins,
    q10,
    workload_join_queries,
)


class TestQueryShapes:
    @pytest.mark.parametrize(
        "make_query,relation_count,has_agg",
        [
            (q1, 1, True),
            (q6, 1, True),
            (q3s, 3, False),
            (q3, 3, True),
            (q10, 4, True),
            (q5, 6, True),
            (q5s, 6, False),
            (q8join, 8, True),
            (q8joins, 8, False),
        ],
    )
    def test_relation_counts_and_aggregation(self, make_query, relation_count, has_agg):
        query = make_query()
        assert len(query.relations) == relation_count
        assert query.has_aggregation is has_agg

    def test_join_graphs_connected(self):
        for query in all_queries():
            assert query.is_connected(query.aliases)

    def test_simplified_variants_share_join_structure(self):
        assert {p.aliases for p in q5().join_predicates} == {
            p.aliases for p in q5s().join_predicates
        }
        assert {p.aliases for p in q8join().join_predicates} == {
            p.aliases for p in q8joins().join_predicates
        }

    def test_q8join_has_seven_join_predicates(self):
        assert len(q8join().join_predicates) == 7

    def test_filters_have_selectivity_hints(self):
        for query in all_queries():
            for predicate in query.filters:
                assert predicate.selectivity_hint is not None


class TestExpressionChain:
    def test_chain_is_nested(self):
        chain = q5_expression_chain()
        assert chain["A"] == Expression.of("region", "nation")
        assert chain["E"] == q5().root_expression
        for smaller, larger in zip("ABCD", "BCDE"):
            assert chain[larger].contains(chain[smaller])
            assert len(chain[larger]) == len(chain[smaller]) + 1

    def test_chain_expressions_connected_in_q5(self):
        query = q5()
        for expression in q5_expression_chain().values():
            assert query.is_connected(expression.aliases)


class TestWorkloadHelpers:
    def test_workload_join_queries_names(self):
        queries = workload_join_queries()
        assert set(queries) == {"Q5", "Q5S", "Q10", "Q8Join", "Q8JoinS"}
        for name, query in queries.items():
            assert query.name == name

    def test_all_queries_have_unique_names(self):
        names = [query.name for query in all_queries()]
        assert len(names) == len(set(names))
