"""Tests for the TPC-H-style schema, catalog and data generator."""

import pytest

from repro.workloads.tpch import (
    BASE_ROW_COUNTS,
    ZipfSampler,
    catalog_from_data,
    generate_tpch_data,
    partition_rows,
    tpch_catalog,
    tpch_schema,
)

import random


class TestSchema:
    def test_all_eight_tables_present(self):
        schema = tpch_schema()
        assert set(schema.table_names) == set(BASE_ROW_COUNTS)

    def test_join_columns_are_indexed(self):
        schema = tpch_schema()
        for table, column in [
            ("orders", "o_custkey"),
            ("lineitem", "l_orderkey"),
            ("customer", "c_custkey"),
            ("partsupp", "ps_partkey"),
            ("nation", "n_nationkey"),
        ]:
            assert schema.index_on_column(table, column) is not None

    def test_queries_validate_against_schema(self):
        from repro.workloads.queries import all_queries

        schema = tpch_schema()
        for query in all_queries():
            query.validate_against(schema)


class TestAnalyticCatalog:
    def test_row_counts_match_spec_proportions(self):
        catalog = tpch_catalog(1.0)
        assert catalog.row_count("lineitem") == pytest.approx(6_000_000)
        assert catalog.row_count("orders") == pytest.approx(1_500_000)
        assert catalog.row_count("nation") == 25

    def test_every_column_has_stats(self):
        catalog = tpch_catalog(0.01)
        schema = tpch_schema()
        for table in schema.tables:
            stats = catalog.table_stats(table.name)
            for column in table.column_names:
                assert stats.has_column(column), f"{table.name}.{column}"

    def test_foreign_key_distincts_bounded_by_parent(self):
        catalog = tpch_catalog(0.01)
        assert catalog.column_stats("orders", "o_custkey").distinct_count <= catalog.row_count(
            "customer"
        )


class TestZipfSampler:
    def test_uniform_when_skew_zero(self):
        sampler = ZipfSampler(100, 0.0, random.Random(1))
        values = [sampler.sample() for _ in range(2000)]
        assert min(values) >= 1 and max(values) <= 100
        # roughly uniform: the most common value should not dominate
        most_common = max(values.count(v) for v in set(values))
        assert most_common < 100

    def test_skew_concentrates_mass_on_low_ranks(self):
        sampler = ZipfSampler(100, 1.0, random.Random(1))
        values = [sampler.sample() for _ in range(2000)]
        assert values.count(1) > len(values) * 0.1

    def test_single_value_domain(self):
        sampler = ZipfSampler(1, 0.5, random.Random(1))
        assert sampler.sample() == 1


class TestDataGenerator:
    def test_row_counts_scale(self):
        data = generate_tpch_data(scale_factor=0.001, seed=5)
        assert len(data["lineitem"]) == 6000
        assert len(data["orders"]) == 1500
        assert len(data["region"]) == 5

    def test_determinism(self):
        first = generate_tpch_data(scale_factor=0.0005, seed=9)
        second = generate_tpch_data(scale_factor=0.0005, seed=9)
        assert first["orders"] == second["orders"]

    def test_foreign_keys_reference_existing_rows(self):
        data = generate_tpch_data(scale_factor=0.001, seed=5)
        customer_keys = {row["c_custkey"] for row in data["customer"]}
        assert all(row["o_custkey"] in customer_keys for row in data["orders"])
        order_keys = {row["o_orderkey"] for row in data["orders"]}
        assert all(row["l_orderkey"] in order_keys for row in data["lineitem"])

    def test_skew_changes_distribution(self):
        uniform = generate_tpch_data(scale_factor=0.001, skew=0.0, seed=5)
        skewed = generate_tpch_data(scale_factor=0.001, skew=1.0, seed=5)

        def top_customer_share(data):
            counts = {}
            for row in data["orders"]:
                counts[row["o_custkey"]] = counts.get(row["o_custkey"], 0) + 1
            return max(counts.values()) / len(data["orders"])

        assert top_customer_share(skewed) > top_customer_share(uniform)

    def test_catalog_from_data(self):
        data = generate_tpch_data(scale_factor=0.0005, seed=5)
        catalog = catalog_from_data(data)
        assert catalog.row_count("customer") == len(data["customer"])

    def test_partition_rows_covers_everything(self):
        data = generate_tpch_data(scale_factor=0.0005, seed=5)
        parts = partition_rows(data["orders"], 10)
        assert sum(len(part) for part in parts) == len(data["orders"])
        assert len(parts) == 10
