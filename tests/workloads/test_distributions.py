"""The shared zipf/uniform sampling core used by workloads and dbgen."""

from __future__ import annotations

from collections import Counter
from random import Random

from repro.workloads import tpch
from repro.workloads.distributions import ZipfSampler


class TestZipfSampler:
    def test_uniform_when_skew_is_zero(self):
        sampler = ZipfSampler(10, 0.0, Random(7))
        values = [sampler.sample() for _ in range(5000)]
        assert set(values) <= set(range(1, 11))
        counts = Counter(values)
        assert max(counts.values()) < 2 * min(counts.values())

    def test_skew_concentrates_on_low_ranks(self):
        sampler = ZipfSampler(100, 1.5, Random(7))
        values = [sampler.sample() for _ in range(5000)]
        counts = Counter(values)
        assert counts[1] > counts.get(50, 0)
        head = sum(count for value, count in counts.items() if value <= 10)
        assert head > len(values) * 0.5

    def test_deterministic_for_seeded_rng(self):
        first = ZipfSampler(50, 1.0, Random(11))
        second = ZipfSampler(50, 1.0, Random(11))
        assert [first.sample() for _ in range(100)] == [
            second.sample() for _ in range(100)
        ]

    def test_range_is_one_based_inclusive(self):
        sampler = ZipfSampler(3, 2.0, Random(3))
        values = {sampler.sample() for _ in range(500)}
        assert values == {1, 2, 3}

    def test_properties(self):
        assert ZipfSampler(5, 1.0, Random(1)).is_skewed
        assert not ZipfSampler(5, 0.0, Random(1)).is_skewed
        assert ZipfSampler(5, 1.0, Random(1)).n == 5


class TestSharedAcrossConsumers:
    def test_workloads_reexport_is_the_same_class(self):
        assert tpch.ZipfSampler is ZipfSampler

    def test_dbgen_uses_the_shared_sampler(self):
        from benchmarks.tpch import dbgen

        assert dbgen.ZipfSampler is ZipfSampler
