"""Compare the paper's pruning strategies on the TPC-H join workload.

For each workload query this script runs the declarative optimizer under
every pruning configuration (none, Evita-Raced-style, aggregate selection,
+reference counting, +recursive bounding, all) and prints the running time,
how much of the search space survived, and — crucially — that the chosen
plan's cost is identical in every configuration (pruning never loses the
optimal plan, Propositions 5–7 of the paper).

Run with::

    python examples/pruning_strategies.py
"""

from __future__ import annotations

import time

from repro.optimizer.declarative import DeclarativeOptimizer
from repro.optimizer.tables import PruningConfig
from repro.workloads.queries import workload_join_queries
from repro.workloads.tpch import tpch_catalog

CONFIGS = [
    PruningConfig.none(),
    PruningConfig.evita_raced(),
    PruningConfig.aggsel(),
    PruningConfig.aggsel_refcount(),
    PruningConfig.aggsel_bounding(),
    PruningConfig.full(),
]


def main() -> None:
    catalog = tpch_catalog(scale_factor=0.01)
    for name, query in workload_join_queries().items():
        print(f"\n=== {name} ===")
        print(f"{'configuration':28s} {'time ms':>9s} {'OR pruned':>10s} {'AND pruned':>11s} {'cost':>12s}")
        costs = set()
        for config in CONFIGS:
            started = time.perf_counter()
            result = DeclarativeOptimizer(query, catalog, pruning=config).optimize()
            elapsed = (time.perf_counter() - started) * 1000
            metrics = result.metrics
            label = "Evita-Raced" if config == PruningConfig.evita_raced() else config.label()
            print(
                f"{label:28s} {elapsed:9.1f} {metrics.pruning_ratio_or:10.0%} "
                f"{metrics.pruning_ratio_and:11.0%} {result.cost:12.3f}"
            )
            costs.add(round(result.cost, 6))
        assert len(costs) == 1, "pruning must never change the optimal plan cost"
        print("  -> identical optimal cost under every configuration")


if __name__ == "__main__":
    main()
