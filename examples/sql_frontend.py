"""SQL frontend walk-through: query text all the way to rows and EXPLAIN.

The same Q3S walk-through as ``quickstart.py``, but entered through the new
SQL layer instead of hand-built ``QueryBuilder`` plumbing:

1. a statistics-only session plans and EXPLAINs against the analytic catalog,
2. a data-backed session executes SELECTs and shows EXPLAIN ANALYZE with
   estimated vs. observed cardinalities — the estimation error that drives
   the paper's incremental re-optimizer.

Run with::

    PYTHONPATH=src python examples/sql_frontend.py
"""

from __future__ import annotations

from repro.sql import Session
from repro.workloads.sql_queries import Q3S_SQL
from repro.workloads.tpch import catalog_from_data, generate_tpch_data, tpch_catalog


def main() -> None:
    print("=== 1. Statistics-only session: plan from text ===")
    stats_session = Session(tpch_catalog(scale_factor=0.01))
    print(stats_session.execute("EXPLAIN " + Q3S_SQL).plan_text)

    print("\n=== 2. Positioned error messages ===")
    try:
        stats_session.execute("SELECT c_custky FROM customer")
    except Exception as error:  # SqlBindingError
        print(error)

    print("\n=== 3. Data-backed session: execute for real ===")
    data = generate_tpch_data(scale_factor=0.0005, seed=3)
    session = Session(catalog_from_data(data), data=data)
    result = session.execute(
        "SELECT c_mktsegment, COUNT(*), AVG(c_acctbal) FROM customer "
        "GROUP BY c_mktsegment ORDER BY c_mktsegment LIMIT 5"
    )
    print(result)

    print("\n=== 4. EXPLAIN ANALYZE: estimated vs. observed cardinalities ===")
    print(session.execute("EXPLAIN ANALYZE " + Q3S_SQL).plan_text)


if __name__ == "__main__":
    main()
