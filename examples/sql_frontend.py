"""SQL frontend walk-through: query text all the way to rows and EXPLAIN.

The same Q3S walk-through as ``quickstart.py``, but entered through the
DB-API surface instead of hand-built ``QueryBuilder`` plumbing:

1. a statistics-only database plans and EXPLAINs against the analytic
   catalog,
2. positioned error messages point a caret at the offending token,
3. a data-backed database executes SELECTs (prepared, with parameters) and
   shows EXPLAIN ANALYZE with estimated vs. observed cardinalities — the
   estimation error that drives the paper's incremental re-optimizer.

Run with::

    PYTHONPATH=src python examples/sql_frontend.py
"""

from __future__ import annotations

import repro
from repro.workloads.sql_queries import Q3S_SQL
from repro.workloads.tpch import catalog_from_data, generate_tpch_data, tpch_catalog


def main() -> None:
    print("=== 1. Statistics-only database: plan from text ===")
    stats_conn = repro.connect(tpch_catalog(scale_factor=0.01))
    print(stats_conn.database.execute("EXPLAIN " + Q3S_SQL).plan_text)

    print("\n=== 2. Positioned error messages ===")
    try:
        stats_conn.execute("SELECT c_custky FROM customer")
    except repro.SqlError as error:
        print(error)

    print("\n=== 3. Data-backed database: execute for real ===")
    data = generate_tpch_data(scale_factor=0.0005, seed=3)
    conn = repro.connect(catalog_from_data(data), data)
    cur = conn.execute(
        "SELECT c_mktsegment, COUNT(*), AVG(c_acctbal) FROM customer "
        "GROUP BY c_mktsegment ORDER BY c_mktsegment LIMIT 5"
    )
    print("\t".join(name for name, *_ in cur.description))
    for row in cur:
        print("\t".join(str(value) for value in row))

    print("\n=== 4. Prepared statement: parameters re-bind, the plan is cached ===")
    sql = "SELECT c_name FROM customer WHERE c_mktsegment = ? LIMIT 3"
    for segment in (0, 1, 2):
        result = conn.database.execute(sql, (segment,))
        print(f"segment {segment}: {result.row_count} rows "
              f"(from_cache={result.from_cache})")

    print("\n=== 5. EXPLAIN ANALYZE: estimated vs. observed cardinalities ===")
    print(conn.database.execute("EXPLAIN ANALYZE " + Q3S_SQL).plan_text)


if __name__ == "__main__":
    main()
