"""The serving tier end to end: snapshots, shared planning, and the wire.

One script walks every layer the concurrent serving subsystem adds:

1. copy-on-write table snapshots — readers on one thread see a consistent
   published version while a writer appends on another,
2. the shared cross-connection plan cache — eight threads miss on the same
   cold statement, exactly one optimizer run happens (single-flight), and
   a write to an *unrelated* table leaves the cached plans alone,
3. the in-process pools — `ConnectionPool` leases and
   `StatementExecutorPool` futures,
4. the TCP server + remote client — start `repro-serve` on an ephemeral
   port in a background thread, connect twice with `repro.client.connect`,
   and show the second connection hitting the plan the first one cached.

Run with::

    PYTHONPATH=src python examples/serving.py
"""

from __future__ import annotations

import threading

import repro
from repro.client import connect as connect_remote
from repro.server import start_server_thread
from repro.server.pool import ConnectionPool, StatementExecutorPool


def build_database() -> repro.Database:
    database = repro.connect().database
    database.execute_script(
        "CREATE TABLE readings (sensor INTEGER, value FLOAT, INDEX (sensor));"
        "INSERT INTO readings VALUES (1, 0.5), (1, 1.5), (2, 2.5), (2, 3.5);"
        "ANALYZE readings;"
        "CREATE TABLE audit (who INTEGER, what INTEGER);"
        "ANALYZE audit"
    )
    return database


def demo_snapshots(database: repro.Database) -> None:
    print("=== 1. Copy-on-write snapshots ===")
    print(f"published version: {database.table_version('readings')}")

    torn = []

    def reader() -> None:
        for _ in range(200):
            count = database.execute("SELECT COUNT(*) FROM readings").rows[0]["count(*)"]
            if count % 4 != 0:  # every batch appends 4 rows atomically
                torn.append(count)

    def writer() -> None:
        for batch in range(25):
            base = 10 + batch
            database.execute(
                f"INSERT INTO readings VALUES ({base}, 1.0), ({base}, 2.0), "
                f"({base}, 3.0), ({base}, 4.0)"
            )

    threads = [threading.Thread(target=reader), threading.Thread(target=writer)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    print(f"published version after 25 batches: {database.table_version('readings')}")
    print(f"torn reads observed: {len(torn)} (a snapshot always sees whole batches)")
    print()


def demo_shared_plan_cache(database: repro.Database) -> None:
    print("=== 2. Shared plan cache: single-flight + table-scoped invalidation ===")
    sql = "SELECT value FROM readings WHERE sensor = $1"
    barrier = threading.Barrier(8)

    def client(sensor: int) -> None:
        barrier.wait()
        database.execute(sql, (sensor,))

    before = database.plan_cache.stats()
    threads = [threading.Thread(target=client, args=(1 + i % 2,)) for i in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    after = database.plan_cache.stats()
    print(f"8 concurrent cold executions -> misses={after['misses'] - before['misses']} "
          f"(one planner; the other {after['hits'] - before['hits']} picked up its entry)")

    database.execute("INSERT INTO audit VALUES (1, 42)")
    cached = database.execute(sql, (1,)).from_cache
    print(f"after INSERT into an unrelated table, still cached: {cached}")
    database.execute("INSERT INTO readings VALUES (9, 9.0)")
    cached = database.execute(sql, (1,)).from_cache
    print(f"after INSERT into the referenced table, replanned: {not cached}")
    print()


def demo_pools(database: repro.Database) -> None:
    print("=== 3. Connection pool + executor pool ===")
    pool = ConnectionPool(database, size=4)
    with pool.lease() as conn:
        count = conn.execute("SELECT COUNT(*) FROM readings").fetchone()[0]
        print(f"leased connection (session {conn.session_id}): {count} rows")
    pool.close()

    executor = StatementExecutorPool(database, workers=4)
    futures = [
        executor.submit("SELECT COUNT(*) FROM readings WHERE sensor = $1", (s,))
        for s in (1, 2, 9)
    ]
    counts = [future.result().rows[0]["count(*)"] for future in futures]
    executor.shutdown()
    print(f"executor-pool futures answered: {counts}")
    print()


def demo_wire(database: repro.Database) -> None:
    print("=== 4. repro-serve + repro.client over TCP ===")
    handle = start_server_thread(database)  # ephemeral port, background thread
    host, port = handle.address
    print(f"server listening on {host}:{port}")
    try:
        sql = "SELECT value FROM readings WHERE sensor = $1 ORDER BY value"
        with connect_remote(host, port) as first:
            rows = first.cursor().execute(sql, (2,)).fetchall()
            print(f"connection {first.session_id}: {rows} (from_cache they planned it)")
        with connect_remote(host, port) as second:
            cur = second.cursor().execute(sql, (1,))
            print(
                f"connection {second.session_id}: {cur.fetchall()} "
                f"(from_cache={cur.result.from_cache} — shared with the first)"
            )
            stmt = second.prepare("SELECT COUNT(*) FROM audit")
            print(f"prepared over the wire: {stmt.execute().rows}")
    finally:
        handle.stop()
    print()


def main() -> None:
    database = build_database()
    demo_snapshots(database)
    demo_shared_plan_cache(database)
    demo_pools(database)
    demo_wire(database)
    print("stats:", database.stats()["plan_cache"])


if __name__ == "__main__":
    main()
