"""Adaptive stream processing over a Linear Road-style stream (SegTollS).

This is the paper's second target domain: a continuous windowed query over a
bursty stream whose data distribution drifts, so the best plan changes over
time.  The script runs the adaptive controller in three configurations — our
incremental re-optimizer, a non-incremental (from scratch) re-optimizer, and a
single static plan — and reports per-slice re-optimization and execution
times, as in the paper's Figures 9 and 10.

Run with::

    python examples/adaptive_stream_processing.py
"""

from __future__ import annotations

from repro.adaptive.controller import AdaptationMode, AdaptiveController
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.streams.linear_road import (
    GeneratorConfig,
    LinearRoadGenerator,
    linear_road_catalog,
    segtolls_query,
)

STREAM_SECONDS = 20


def main() -> None:
    query = segtolls_query()
    generator = LinearRoadGenerator(GeneratorConfig(reports_per_second=30, cars=150, seed=2))
    slices = generator.generate_slices(STREAM_SECONDS, 1.0)
    print(f"stream: {STREAM_SECONDS}s, {sum(s.row_count for s in slices)} reports")

    runs = {}

    runs["incremental AQP"] = AdaptiveController(
        query, linear_road_catalog(), mode=AdaptationMode.INCREMENTAL, reoptimize_every=1
    ).run(slices)

    runs["non-incremental AQP"] = AdaptiveController(
        query, linear_road_catalog(), mode=AdaptationMode.NON_INCREMENTAL, reoptimize_every=1
    ).run(slices)

    # Static plan optimized from full-stream statistics ("good single plan").
    sample = [row for stream_slice in slices for row in stream_slice.rows]
    good_catalog = linear_road_catalog(sample)
    good_plan = DeclarativeOptimizer(query, good_catalog).optimize().plan
    runs["static good plan"] = AdaptiveController(
        query, good_catalog, mode=AdaptationMode.STATIC, static_plan=good_plan
    ).run(slices)

    print(f"\n{'strategy':22s} {'re-opt s':>9s} {'exec s':>9s} {'total s':>9s} "
          f"{'switches':>9s} {'rows':>7s}")
    for name, outcome in runs.items():
        print(
            f"{name:22s} {outcome.total_reoptimize_seconds:9.3f} "
            f"{outcome.total_execute_seconds:9.3f} {outcome.total_seconds:9.3f} "
            f"{outcome.plan_switches:9d} {outcome.total_output_rows:7d}"
        )

    print("\nper-slice re-optimization time (ms) — incremental vs non-incremental:")
    incremental = runs["incremental AQP"].reports
    non_incremental = runs["non-incremental AQP"].reports
    print("slice:      " + " ".join(f"{r.slice_index:6d}" for r in incremental))
    print("incremental " + " ".join(f"{r.reoptimize_seconds * 1000:6.1f}" for r in incremental))
    print("from-scratch" + " ".join(f"{r.reoptimize_seconds * 1000:6.1f}" for r in non_incremental))
    print(
        "\nNote how the incremental optimizer's per-slice overhead decays as its "
        "statistics converge, while the from-scratch optimizer pays a constant cost."
    )


if __name__ == "__main__":
    main()
