"""Quickstart: optimize the paper's running example (Q3S) and inspect the state.

This reproduces the paper's Section 2 walk-through: the simplified TPC-H Q3
(called Q3S) is optimized by the declarative optimizer; we print the chosen
physical plan, the surviving ``SearchSpace`` rows (the paper's Table 1), and
the and-or-graph costs (the paper's Figure 2), then apply one statistics
change and re-optimize incrementally.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DeclarativeOptimizer
from repro.relational.expressions import Expression
from repro.workloads.queries import q3s
from repro.workloads.tpch import tpch_catalog


def main() -> None:
    query = q3s()
    catalog = tpch_catalog(scale_factor=0.01)
    optimizer = DeclarativeOptimizer(query, catalog)

    print("=== Initial optimization of Q3S ===")
    result = optimizer.optimize()
    print(result.plan.pretty())
    print(f"\nestimated cost: {result.cost:.3f}")
    metrics = result.metrics
    print(
        f"search space: {metrics.or_nodes_enumerated} expression-property pairs, "
        f"{metrics.and_nodes_enumerated} alternatives "
        f"({metrics.pruning_ratio_or:.0%} / {metrics.pruning_ratio_and:.0%} pruned)"
    )

    print("\n=== Surviving SearchSpace rows (cf. the paper's Table 1) ===")
    for row in optimizer.search_space_rows():
        print(f"  {row}")

    print("\n=== BestCost per expression (cf. the paper's Figure 2) ===")
    for or_key in sorted(
        {entry.key.or_key for entry in optimizer.search_space_rows()},
        key=lambda key: (len(key.expression), str(key)),
    ):
        print(f"  BestCost{or_key.expression} = {optimizer.best_cost(or_key):.3f}")

    print("\n=== Incremental re-optimization ===")
    # Suppose we discover at runtime that customer x orders produces 4x the
    # estimated rows: push the observation in and re-optimize incrementally.
    delta = optimizer.update_join_selectivity(Expression.of("customer", "orders"), 4.0)
    updated = optimizer.reoptimize([delta])
    print(updated.plan.pretty())
    print(
        f"\nre-optimization touched {updated.metrics.or_nodes_touched} of "
        f"{updated.metrics.or_nodes_total} expression-property pairs "
        f"({updated.metrics.update_ratio_or:.0%}) and took "
        f"{updated.metrics.elapsed_seconds * 1000:.1f} ms"
    )


if __name__ == "__main__":
    main()
