"""The TPC-H harness end to end: dbgen, oracle, and the skew sweep.

The walk-through:

1. generate a tiny TPC-H dataset (SF 0.002) with the pure-python
   dbgen (:mod:`benchmarks.tpch.dbgen`) — all eight tables, seeded,
   streamed to CSV for ``COPY``;
2. load the CSVs into a repro database and run a supported query
   (Q6, the forecasting-revenue-change query) with per-operator
   estimated-vs-observed cardinality capture;
3. differentially verify the result against sqlite3 running the same
   SQL over the same CSVs (:mod:`benchmarks.tpch.oracle`), with
   float tolerance and order-insensitive comparison;
4. regenerate the data with zipf-skewed join keys, tell the optimizer
   the data is uniform, and watch ``refresh_cached_plans()`` flip
   cached plans once observed cardinalities contradict the stale
   statistics — the paper's motivating scenario.

The full 22-query manifest (16 supported + 6 excluded with reasons)
lives in ``benchmarks/tpch/queries/``; ``benchmarks/bench_tpch.py``
times the whole subset on both engines and is CI-gated.  In the
``repro-sql`` CLI, ``.timer on`` prints per-statement wall time when
exploring these queries interactively.

Run from the repo root with::

    PYTHONPATH=src:. python examples/tpch_harness.py
"""

from __future__ import annotations

import shutil
import tempfile

from benchmarks.tpch import dbgen, oracle, runner

SCALE_FACTOR = 0.002
SKEW = 1.0


def main() -> None:
    uniform_dir = tempfile.mkdtemp(prefix="tpch-uniform-")
    skewed_dir = tempfile.mkdtemp(prefix="tpch-skewed-")
    try:
        print("=== 1. dbgen: eight tables, seeded, streamed to CSV ===")
        report = dbgen.generate(uniform_dir, scale_factor=SCALE_FACTOR, seed=19)
        for table, count in report.row_counts.items():
            print(f"  {table:10s} {count:6d} rows")

        print("\n=== 2. Load via COPY and run Q6 with cardinality capture ===")
        supported, excluded = runner.load_queries()
        print(f"  manifest: {len(supported)} supported, {len(excluded)} excluded")
        connection = runner.load_connection(uniform_dir)
        run = runner.run_query(connection, "q06", supported["q06"])
        print(f"  q06 -> {run.rows} in {run.elapsed_ms:.2f} ms")
        for key, (estimated, observed) in run.cardinalities.items():
            print(f"  {key}: est={estimated:.0f} observed={observed}")

        print("\n=== 3. Differential oracle: same SQL, same CSVs, sqlite3 ===")
        with oracle.SqliteOracle(uniform_dir) as sqlite_oracle:
            expected = sqlite_oracle.run(supported["q06"])
        outcome = oracle.compare_results(expected, run.rows, ordered=False)
        assert outcome.matches, outcome.differences
        print(f"  q06 matches sqlite3 ({outcome.row_count} rows, float-tolerant)")
        connection.close()

        print("\n=== 4. Skew sweep: stale uniform stats vs observed feedback ===")
        dbgen.generate(skewed_dir, scale_factor=SCALE_FACTOR, skew=SKEW, seed=19)
        sweep_queries = {name: supported[name] for name in ("q04", "q09", "q10", "q21")}
        entries = runner.skew_sweep({SKEW: skewed_dir}, queries=sweep_queries)
        for entry in entries:
            marker = "FLIPPED" if entry.flipped else "stable"
            print(
                f"  {entry.name} @ skew={entry.skew}: {marker} "
                f"(worst underestimate {entry.before.max_underestimate:.1f}x)"
            )
        assert any(entry.flipped for entry in entries)
        print("  refresh_cached_plans() re-optimized at least one cached plan")
    finally:
        shutil.rmtree(uniform_dir, ignore_errors=True)
        shutil.rmtree(skewed_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
