"""The observability layer end to end: slow query → trace → re-optimization.

The walk-through follows one skewed workload through every surface the
unified observability layer exposes:

1. connect with ``trace=True`` and a slow-query threshold, build two
   tables whose analyzed statistics immediately go stale (a hot join
   key appears *after* ``ANALYZE``);
2. run the join — under stale statistics the optimizer misestimates it,
   and the statement lands in the **slow-query log** with its full
   trace embedded;
3. render the **trace**: the parse → bind → optimize → execute span
   tree, with per-operator spans carrying estimated vs observed rows
   (the same numbers ``EXPLAIN ANALYZE`` prints);
4. call ``refresh_cached_plans()`` and render the **re-optimization
   event**: which cardinality deltas triggered it, cost before/after,
   and the old vs new plan shape;
5. dump the **metrics registry** — the same counters behind
   ``Database.stats()`` — as Prometheus text, ready to scrape.

Run from the repo root with::

    PYTHONPATH=src python examples/observability.py
"""

from __future__ import annotations

import repro
from repro.obs.render import render_event, render_trace

HOT_ROWS = 400


def main() -> None:
    print("=== 1. Connect with tracing + a slow-query threshold ===")
    connection = repro.connect(trace=True, slow_query_ms=0.0)
    database = connection.database
    connection.executescript(
        "CREATE TABLE orders (okey INTEGER, cust INTEGER); "
        "CREATE TABLE lines (lkey INTEGER, qty INTEGER); "
        "INSERT INTO orders VALUES (1, 10), (2, 20); "
        "INSERT INTO lines VALUES (1, 5), (2, 7); "
        "ANALYZE orders; ANALYZE lines"
    )
    # The statistics are now frozen — and promptly go stale: a hot key
    # floods one side of the join after ANALYZE already ran.
    values = ", ".join(f"(1, {qty})" for qty in range(HOT_ROWS))
    connection.execute(f"INSERT INTO lines VALUES {values}")
    print(f"  orders: 2 rows, lines: {2 + HOT_ROWS} rows (stats think: 2)")

    print("\n=== 2. The misestimated join lands in the slow-query log ===")
    join = "SELECT COUNT(*) FROM orders, lines WHERE okey = lkey"
    cursor = connection.execute(join)
    print(f"  {join}")
    print(f"  -> {cursor.fetchall()}")
    slow = database.events(kind="slow_query")[-1]
    print(f"  slow-query entry #{slow['seq']}: {slow['elapsed_ms']:.3f} ms "
          f"(threshold {slow['threshold_ms']} ms), trace {slow['trace_id']}")

    print("\n=== 3. The embedded trace: spans with est vs observed rows ===")
    print(render_trace(slow["trace"]))

    print("\n=== 4. refresh_cached_plans() leaves a re-optimization event ===")
    refreshed = database.refresh_cached_plans()
    print(f"  refreshed plans: {refreshed}")
    events = database.events(kind="reoptimization")
    assert events, "stale join statistics must trigger a re-optimization"
    print(render_event(events[-1]))

    print("\n=== 5. The metrics registry, ready for a Prometheus scrape ===")
    for line in database.prometheus_metrics().splitlines():
        if line.startswith(("repro_statements_total", "repro_plan_cache",
                            "repro_reoptimizations_total", "repro_slow_queries_total")):
            print(f"  {line}")

    connection.close()
    print("\ndone: slow query -> trace -> re-optimization event -> metrics")


if __name__ == "__main__":
    main()
