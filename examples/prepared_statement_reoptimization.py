"""Repeated execution of a prepared statement with incremental re-optimization.

This is the paper's first target domain: an OLAP query (TPC-H Q5) executed
repeatedly while cost estimates are refined from observed behaviour.  Each
round we execute the current plan over a different skewed partition of the
data, feed the observed cardinalities back into the optimizer, and re-optimize
incrementally; the script reports how much cheaper each re-optimization is
than running the Volcano-style optimizer from scratch.

Run with::

    python examples/prepared_statement_reoptimization.py
"""

from __future__ import annotations

import time

from repro.adaptive.monitor import RuntimeMonitor
from repro.engine.executor import PlanExecutor
from repro.optimizer.baselines.volcano import VolcanoOptimizer
from repro.optimizer.declarative import DeclarativeOptimizer
from repro.workloads.queries import q5
from repro.workloads.tpch import catalog_from_data, generate_tpch_data, partition_rows


def main() -> None:
    print("generating skewed TPC-H data (this is the slow part)...")
    data = generate_tpch_data(scale_factor=0.002, skew=0.5, seed=4)
    catalog = catalog_from_data(data)
    query = q5()

    optimizer = DeclarativeOptimizer(query, catalog)
    initial = optimizer.optimize()
    print(f"initial plan (cost {initial.cost:.2f}):")
    print(initial.plan.pretty())

    volcano = VolcanoOptimizer(query, catalog)
    started = time.perf_counter()
    volcano.optimize()
    volcano_seconds = time.perf_counter() - started

    monitor = RuntimeMonitor(cumulative=True)
    partitions = partition_rows(data["lineitem"], 6)
    print("\nround | exec rows | re-opt ms | vs from-scratch | plan changed")
    previous_signature = initial.plan.join_order_signature()
    for round_index, partition in enumerate(partitions, start=1):
        round_data = dict(data)
        round_data["lineitem"] = partition
        plan = optimizer.best_plan()
        execution = PlanExecutor(query, round_data).execute(plan)
        monitor.record_execution(execution)
        deltas = monitor.produce_deltas(optimizer)
        started = time.perf_counter()
        if deltas:
            optimizer.reoptimize(deltas)
        reopt_seconds = time.perf_counter() - started
        new_signature = optimizer.best_plan().join_order_signature()
        changed = "yes" if new_signature != previous_signature else "no"
        previous_signature = new_signature
        speedup = volcano_seconds / reopt_seconds if reopt_seconds > 0 else float("inf")
        print(
            f"{round_index:5d} | {execution.row_count:9d} | {reopt_seconds * 1000:9.2f} "
            f"| {speedup:13.1f}x | {changed}"
        )

    print("\nfinal plan:")
    print(optimizer.best_plan().pretty())


if __name__ == "__main__":
    main()
