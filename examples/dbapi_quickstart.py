"""End-to-end `repro.connect()` walk-through: SQL text is all you need.

One script drives the whole system through the DB-API surface:

1. create a table (types, primary key, secondary index) from SQL,
2. load it three ways — INSERT literals, executemany with parameters,
   and a COPY bulk load from CSV,
3. ANALYZE to build statistics (row counts + equi-depth histograms),
4. run a prepared SELECT with parameters on both engines, and show that
   re-execution hits the plan cache while still recording observed
   cardinalities for the paper's incremental re-optimizer.

Run with::

    PYTHONPATH=src python examples/dbapi_quickstart.py
"""

from __future__ import annotations

import os
import tempfile

import repro


def main() -> None:
    conn = repro.connect()
    cur = conn.cursor()

    print("=== 1. DDL: create a table through SQL ===")
    cur.execute(
        "CREATE TABLE sensor (sid INTEGER, temp FLOAT, room STRING, day DATE, "
        "PRIMARY KEY (sid), INDEX (temp))"
    )
    table = conn.database.catalog.schema.table("sensor")
    print(f"created {table.name}({', '.join(map(str, table.columns))})")

    print("\n=== 2. Load: INSERT literals, parameters, COPY from CSV ===")
    cur.execute("INSERT INTO sensor VALUES (1, 20.5, 'lab', 10), (2, 21.0, 'lab', 11)")
    cur.executemany(
        "INSERT INTO sensor VALUES (?, ?, ?, ?)",
        [(3, 19.5, "office", 10), (4, 23.5, "office", 12), (5, 18.0, "hall", 13)],
    )
    with tempfile.NamedTemporaryFile("w", suffix=".csv", delete=False) as handle:
        handle.write("sid,temp,room,day\n6,25.0,roof,14\n7,,roof,15\n")
        csv_path = handle.name
    try:
        loaded = cur.execute(f"COPY sensor FROM '{csv_path}'").rowcount
    finally:
        os.unlink(csv_path)
    print(f"loaded {loaded} rows via COPY; "
          f"{conn.database.stored_row_count('sensor')} rows stored (one temp is NULL)")

    print("\n=== 3. ANALYZE: statistics from the stored data ===")
    cur.execute("ANALYZE sensor")
    stats = conn.database.catalog.table_stats("sensor")
    print(f"row_count={stats.row_count:.0f}, "
          f"temp in [{stats.column('temp').min_value}, {stats.column('temp').max_value}], "
          f"histogram={'yes' if stats.column('temp').histogram else 'no'}")

    print("\n=== 4. Prepared SELECT with parameters, on both engines ===")
    sql = "SELECT sid, room FROM sensor WHERE temp > $1 AND day < $2 ORDER BY sid"
    for engine in ("vectorized", "row"):
        rows = conn.database.connect(engine=engine).execute(sql, (20.0, 14)).fetchall()
        print(f"{engine:>10}: {rows}")

    print("\n=== 5. The plan cache across re-executions ===")
    for bound in (19.0, 21.0, 24.0):
        result = conn.database.execute(sql, (bound, 15))
        print(f"temp > {bound}: {result.row_count} rows "
              f"(from_cache={result.from_cache})")
    cache = conn.database.stats()["plan_cache"]
    monitor = conn.database.stats()["monitor"]
    print(f"plan cache: {cache['hits']} hits / {cache['misses']} misses; "
          f"monitor holds {monitor['observations']} observations")

    print("\n=== 6. EXPLAIN ANALYZE: estimates vs observations ===")
    print(conn.database.execute("EXPLAIN ANALYZE " + sql, (20.0, 15)).plan_text)


if __name__ == "__main__":
    main()
