"""The scalar-expression grammar: disjunctions, ranges, NULLs, computed columns.

A tour of what WHERE clauses and SELECT lists can express since the typed
scalar-expression IR (`repro.relational.scalar`) replaced the old
single-comparison predicate model:

1. a mixed-type table with NULLs, created and loaded through SQL,
2. disjunctions, BETWEEN, IN lists and LIKE in one WHERE clause — and how
   the binder splits it into CNF conjuncts the optimizer costs separately,
3. SQL three-valued NULL semantics (NULL never satisfies a filter;
   IS [NOT] NULL finds it),
4. computed SELECT expressions with aliases (`price * qty AS total`),
5. typed prepared-statement parameters inside arbitrary expressions,
6. EXPLAIN rendering of predicate trees, identical on both engines.

Run with::

    PYTHONPATH=src python examples/expressions.py
"""

from __future__ import annotations

import repro


def main() -> None:
    conn = repro.connect()
    cur = conn.cursor()

    print("=== 1. A mixed-type table with NULLs ===")
    cur.execute(
        "CREATE TABLE orders (oid INTEGER, region STRING, qty INTEGER, "
        "price FLOAT, note STRING, PRIMARY KEY (oid))"
    )
    cur.execute(
        "INSERT INTO orders VALUES "
        "(1, 'EU',    10, 2.50, 'rush'),  "
        "(2, 'APAC',  60, 1.00, 'bulk'),  "
        "(3, 'EU',     7, 3.00, NULL),    "
        "(4, 'US',    10, 9.90, 'rush'),  "
        "(5, 'APAC',  49, 4.00, 'remit'), "
        "(6, 'LATAM',  5, 8.00, 'rush'),  "
        "(7, 'EU',   NULL, 6.50, 'bulk')"
    )
    cur.execute("ANALYZE orders")
    print(f"{conn.database.stored_row_count('orders')} rows stored")

    print("\n=== 2. Disjunctions, ranges and NULL tests in one WHERE ===")
    sql = (
        "SELECT oid, region, qty FROM orders "
        "WHERE (region = 'EU' OR region = 'APAC') "
        "AND qty BETWEEN 5 AND 50 AND note IS NOT NULL ORDER BY oid"
    )
    for row in cur.execute(sql):
        print(row)
    print("-- each top-level AND conjunct is costed and pushed down separately:")
    print(conn.database.execute("EXPLAIN " + sql).plan_text)

    print("\n=== 3. Three-valued logic: NULL is 'filtered out' ===")
    print("qty < 100 keeps:", [r[0] for r in cur.execute(
        "SELECT oid FROM orders WHERE qty < 100 ORDER BY oid")])
    print("(oid 7 has NULL qty: NULL < 100 is NULL, not TRUE)")
    print("qty IS NULL finds:", [r[0] for r in cur.execute(
        "SELECT oid FROM orders WHERE qty IS NULL")])
    print("NOT qty < 100 resurrects nothing:", [r[0] for r in cur.execute(
        "SELECT oid FROM orders WHERE NOT qty < 100")])

    print("\n=== 4. Computed SELECT expressions ===")
    for row in cur.execute(
        "SELECT oid, price * qty AS total FROM orders "
        "WHERE price * qty > 25.0 ORDER BY oid"
    ):
        print(row)
    print("(NULL qty propagates: oid 7's total would be NULL, and the")
    print(" filter 'price * qty > 25.0' drops it under 3VL)")

    print("\n=== 5. Typed parameters inside expressions ===")
    sql = (
        "SELECT oid FROM orders "
        "WHERE qty BETWEEN ? AND ? AND (note LIKE 'ru%' OR region IN ('APAC', ?)) "
        "ORDER BY oid"
    )
    for bounds in ((5, 15, "EU"), (40, 70, "LATAM")):
        rows = [r[0] for r in cur.execute(sql, bounds)]
        print(f"params {bounds}: oids {rows} "
              f"(from_cache={cur.result.from_cache})")

    print("\n=== 6. Both engines agree on every expression ===")
    sql = (
        "SELECT oid, price - 1.5 * 2 AS adjusted FROM orders "
        "WHERE NOT (region != 'EU') AND qty IS NOT NULL ORDER BY oid"
    )
    for engine in ("vectorized", "row"):
        rows = conn.database.connect(engine=engine).execute(sql).fetchall()
        print(f"{engine:>10}: {rows}")


if __name__ == "__main__":
    main()
