"""Typed column buffers + morsel-parallel execution, end to end.

The walk-through:

1. create a table through SQL — INTEGER/FLOAT columns land in typed
   ``array('q')``/``array('d')`` buffers with null masks
   (:mod:`repro.storage.buffers`), strings stay plain lists;
2. run the same aggregation serially and morsel-parallel (``workers=4``)
   and verify the outputs are byte-identical — same rows, same group
   order, same float bits, same observed cardinalities;
3. show the knobs: database-wide ``workers``, per-statement override,
   ``batch_size`` (= the morsel size), and the ``workers=N`` footer that
   EXPLAIN ANALYZE adds only when the parallel executor ran;
4. run the same statement on the **process** executor — typed columns ride
   shared-memory segments to worker processes (true multi-core, no GIL),
   results still byte-identical, and the EXPLAIN ANALYZE footer names the
   executor that actually ran (``executor=thread`` when shared memory is
   unavailable and the statement fell back);
5. demote a typed column by inserting an off-type value — the store
   falls back to a plain list atomically and queries keep working.

Run with::

    PYTHONPATH=src python examples/parallel_scan.py
"""

from __future__ import annotations

import random

import repro
from repro.storage.buffers import TypedColumn


def main() -> None:
    # workers=4 is the database-wide default; each statement may override.
    conn = repro.connect(workers=4, batch_size=256)
    cur = conn.cursor()

    print("=== 1. Typed buffers from DDL ===")
    cur.execute(
        "CREATE TABLE readings (rid INTEGER, room INTEGER, temp FLOAT, "
        "note STRING, PRIMARY KEY (rid))"
    )
    rng = random.Random(7)
    cur.executemany(
        "INSERT INTO readings VALUES (?, ?, ?, ?)",
        [
            (rid, rng.randint(0, 5), round(rng.uniform(15.0, 30.0), 2), "ok")
            for rid in range(3000)
        ],
    )
    cur.execute("ANALYZE readings")
    store = conn.database._store["readings"]
    snapshot = store.snapshot()
    for name in ("rid", "temp", "note"):
        column = snapshot.columns[name]
        backing = (
            f"TypedColumn[{column.kind}]" if isinstance(column, TypedColumn) else "list"
        )
        print(f"  column {name!r}: {backing}")

    print("\n=== 2. Serial vs workers=4: byte-identical ===")
    sql = (
        "SELECT room, COUNT(*), SUM(temp), MIN(temp), MAX(temp) "
        "FROM readings WHERE temp > 18.5 GROUP BY room"
    )
    serial = conn.database.execute(sql, workers=1)
    parallel = conn.database.execute(sql)  # database default: workers=4
    assert serial.rows == parallel.rows
    assert repr(serial.rows) == repr(parallel.rows)  # float bits included
    assert (
        serial.execution.observed_cardinalities
        == parallel.execution.observed_cardinalities
    )
    print(f"  {len(parallel.rows)} groups, identical rows/order/cardinalities")
    for row in parallel.rows[:3]:
        print(f"  {row}")

    print("\n=== 3. EXPLAIN ANALYZE reports the worker count ===")
    analyzed = conn.database.execute("EXPLAIN ANALYZE " + sql)
    footer = analyzed.plan_text.rsplit("\n", 1)[-1]
    print(f"  parallel: {footer}")
    analyzed_serial = conn.database.execute("EXPLAIN ANALYZE " + sql, workers=1)
    print(f"  serial:   {analyzed_serial.plan_text.rsplit(chr(10), 1)[-1]}")
    assert "workers=4" in footer
    assert "workers=" not in analyzed_serial.plan_text

    print("\n=== 4. Process executor: shared-memory morsels, same bytes ===")
    process = conn.database.execute(sql, executor="process")
    assert process.rows == serial.rows
    assert repr(process.rows) == repr(serial.rows)
    ran_on = process.execution.executor  # "thread" = honest no-shm fallback
    print(f"  executor={ran_on}: rows identical to serial again")
    analyzed_process = conn.database.execute("EXPLAIN ANALYZE " + sql, executor="process")
    print(f"  footer:  {analyzed_process.plan_text.rsplit(chr(10), 1)[-1]}")
    stats = conn.database.stats()["parallel"]
    print(
        f"  morsels dispatched: {stats['morsels_dispatched']}, "
        f"shm bytes exported: {stats['shm_bytes_exported']}, "
        f"fallbacks: {stats['fallbacks']}"
    )

    print("\n=== 5. Off-type data demotes the buffer atomically ===")
    # The binder would reject a string here, so poke the storage layer the
    # way adopted legacy data does: an append the int64 buffer cannot hold.
    try:
        snapshot.columns["rid"].copy().extend(["not-an-int"])
    except TypeError as exc:
        print(f"  typed append refused: {exc}")
    store.append_rows([{"rid": 3000, "room": 1, "temp": None, "note": None}])
    print("  NULL temp stored via the null mask; queries keep working:")
    cur.execute("SELECT COUNT(*) FROM readings WHERE temp IS NULL")
    print(f"  rows with NULL temp: {cur.fetchone()[0]}")


if __name__ == "__main__":
    main()
