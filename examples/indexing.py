"""Physical storage & indexing: real hash/ordered indexes behind the plans.

A tour of the storage layer (`repro.storage`) and the access paths it backs:

1. a fact table created, bulk-loaded and indexed entirely through SQL
   (CREATE TABLE → COPY → CREATE INDEX ... USING HASH|ORDERED),
2. EXPLAIN showing the chosen access path (`index-scan ... using idx_...`),
3. the measured gap between a sequential scan and an index lookup on the
   same data — the speedup the incremental re-optimizer's plan switches
   actually cash in,
4. sargability: which predicates an index can serve, and which kinds,
5. index maintenance: INSERT/COPY keep every index fresh in the same call,
6. ordered iteration: key-order row ids straight off the index, no sort,
7. DROP INDEX invalidating cached plans through the catalog version.

Run with::

    PYTHONPATH=src python examples/indexing.py
"""

from __future__ import annotations

import csv
import os
import random
import tempfile
import time

import repro
from repro.optimizer.search_space import EnumerationOptions

ROWS = 40_000


def build_database(enumeration=None) -> repro.Database:
    rng = random.Random(11)
    handle = tempfile.NamedTemporaryFile(
        "w", suffix=".csv", delete=False, newline="", encoding="utf-8"
    )
    with handle:
        writer = csv.writer(handle)
        writer.writerow(["id", "ts", "val"])
        for i in range(ROWS):
            writer.writerow([i, rng.randrange(100_000), f"{rng.uniform(0, 100):.3f}"])
    database = repro.connect(enumeration=enumeration).database
    database.execute_script(
        "CREATE TABLE events (id INTEGER, ts INTEGER, val FLOAT);"
        f"COPY events FROM '{handle.name}';"
        "CREATE INDEX idx_events_id ON events (id) USING HASH;"
        "CREATE INDEX idx_events_ts ON events (ts);"  # ordered (the default)
        "ANALYZE"
    )
    os.unlink(handle.name)
    return database


def timed(database: repro.Database, sql: str) -> float:
    database.execute(sql)  # warm the plan cache
    started = time.perf_counter()
    database.execute(sql)
    return (time.perf_counter() - started) * 1000


def main() -> None:
    print(f"=== 1. {ROWS} rows loaded through SQL, two indexes ===")
    database = build_database()
    for line in database.execute("SELECT COUNT(*) FROM events").rows:
        print(f"  rows stored: {line['count(*)']}")
    stored = database.store["events"]
    for name, index in sorted(stored.indexes.items()):
        print(f"  {name}: kind={index.kind}, entries={index.entry_count}")

    print("\n=== 2. EXPLAIN shows the access path ===")
    point = "SELECT val FROM events WHERE id = 31737"
    rng = "SELECT id FROM events WHERE ts BETWEEN 40000 AND 40400"
    print(database.execute("EXPLAIN " + point).plan_text)
    print(database.execute("EXPLAIN " + rng).plan_text)

    print("\n=== 3. What the index buys (same data, index plans disabled) ===")
    seq_database = build_database(
        EnumerationOptions(enable_index_scans=False, enable_index_nl=False)
    )
    for label, sql in (("hash point lookup", point), ("ordered range scan", rng)):
        seq_ms = timed(seq_database, sql)
        idx_ms = timed(database, sql)
        print(f"  {label}: seq {seq_ms:8.3f} ms -> indexed {idx_ms:8.3f} ms "
              f"({seq_ms / idx_ms:.0f}x)")

    print("\n=== 4. Sargability: what an index can serve ===")
    for sql, note in (
        ("SELECT id FROM events WHERE ts <= 150", "range op on ordered index"),
        ("SELECT ts FROM events WHERE id = 7", "equality on hash index"),
        ("SELECT id FROM events WHERE id > 39990", "range on a hash-only column"),
        ("SELECT id FROM events WHERE ts * 2 = 100", "arithmetic over the column"),
        ("SELECT id FROM events WHERE ts != 5", "!= is never index-served"),
    ):
        plan = database.execute("EXPLAIN " + sql).plan_text.splitlines()[1].strip()
        access = plan.split("  (")[0]
        print(f"  {note:36s} -> {access}")

    print("\n=== 5. INSERT maintains every index in the same call ===")
    database.execute("INSERT INTO events VALUES (990001, 123456, 1.5)")
    print("  " + str(database.execute("SELECT val FROM events WHERE id = 990001").rows))
    print("  " + str(database.execute("SELECT id FROM events WHERE ts = 123456").rows))

    print("\n=== 6. Ordered iteration: key order without a sort ===")
    ordered = stored.usable_index("ts", "sorted")
    first = ordered.ordered_row_ids()[:5]
    print(f"  first five row ids in ts order: {first}")
    print(f"  their ts values: {[stored.columns['ts'][i] for i in first]}")

    print("\n=== 7. DROP INDEX invalidates cached plans ===")
    before = database.stats()["plan_cache"]["invalidations"]
    database.execute("DROP INDEX idx_events_id")
    database.execute(point)  # re-plans against the new catalog version
    after = database.stats()["plan_cache"]
    print(f"  invalidations: {before} -> {after['invalidations']}")
    print(database.execute("EXPLAIN " + point).plan_text)


if __name__ == "__main__":
    main()
